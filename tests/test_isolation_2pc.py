"""Isolation levels and distributed update (2PC) tests — section 2.2/2.3."""

import pytest

from repro.errors import IsolationError, TransactionError
from repro.net import SimulatedNetwork
from repro.rpc import TransactionCoordinator, XRPCPeer
from repro.rpc.isolation import IsolationManager
from repro.rpc.store import DocumentStore
from repro.soap.messages import QueryID
from tests.helpers import values

COUNTER_MODULE = """
module namespace c = "urn:counter";
declare function c:read() as xs:string
{ string(doc("counter.xml")/counter) };
declare updating function c:bump($v as xs:string)
{ replace value of node doc("counter.xml")/counter with $v };
"""


def make_peers(network, n=2):
    peers = []
    for index in range(n):
        peer = XRPCPeer(f"p{index}", network)
        peer.registry.register_source(COUNTER_MODULE, location="c.xq")
        peer.store.register("counter.xml", "<counter>0</counter>")
        peers.append(peer)
    return peers


class TestRepeatableRead:
    def test_same_snapshot_across_calls(self):
        """Two calls in one repeatable query see the same state even if
        another transaction commits in between."""
        network = SimulatedNetwork()
        p0, p1 = make_peers(network)

        # Interleave: after the first call of the isolated query, p1's
        # document is changed by a direct (non-isolated) update.
        original_handle = p1.server.handle
        seen = {"count": 0}

        def interfering_handle(payload):
            response = original_handle(payload)
            seen["count"] += 1
            if seen["count"] == 1:
                # Simulate another transaction committing at p1.
                p1.store.register("counter.xml", "<counter>99</counter>")
            return response

        network.register_peer("p1", interfering_handle)

        query = """
        import module namespace c = "urn:counter" at "c.xq";
        declare option xrpc:isolation "repeatable";
        ( execute at {"xrpc://p1"} { c:read() },
          execute at {"xrpc://p1"} { c:read() } )
        """
        result = p0.execute_query(query, force_one_at_a_time=True)
        assert values(result.sequence) == ["0", "0"]

    def test_without_isolation_sees_interleaved_state(self):
        network = SimulatedNetwork()
        p0, p1 = make_peers(network)
        original_handle = p1.server.handle
        seen = {"count": 0}

        def interfering_handle(payload):
            response = original_handle(payload)
            seen["count"] += 1
            if seen["count"] == 1:
                p1.store.register("counter.xml", "<counter>99</counter>")
            return response

        network.register_peer("p1", interfering_handle)
        query = """
        import module namespace c = "urn:counter" at "c.xq";
        ( execute at {"xrpc://p1"} { c:read() },
          execute at {"xrpc://p1"} { c:read() } )
        """
        result = p0.execute_query(query, force_one_at_a_time=True)
        assert values(result.sequence) == ["0", "99"]

    def test_snapshot_expiry_rejects_late_requests(self):
        network = SimulatedNetwork()
        store = DocumentStore()
        store.register("d.xml", "<d/>")
        manager = IsolationManager(store, network.clock)
        query_id = QueryID(host="p0", timestamp=1.0, timeout=10)
        manager.acquire(query_id)
        assert manager.active_count() == 1
        network.clock.advance(11)
        with pytest.raises(IsolationError):
            manager.acquire(query_id)
        assert manager.active_count() == 0

    def test_expired_host_administration_keeps_latest_only(self):
        network = SimulatedNetwork()
        store = DocumentStore()
        manager = IsolationManager(store, network.clock)
        for ts in (1.0, 2.0, 3.0):
            manager.acquire(QueryID(host="p0", timestamp=ts, timeout=1))
            network.clock.advance(2)
        # All three expired; a new queryID with an *older* timestamp than
        # the latest expired one must be rejected.
        with pytest.raises(IsolationError):
            manager.acquire(QueryID(host="p0", timestamp=2.5, timeout=1))
        # Fresh timestamps are accepted.
        manager.acquire(QueryID(host="p0", timestamp=100.0, timeout=1))


class TestUpdatesRuleRFu:
    """Rule R_Fu: without isolation, updates apply immediately per call."""

    def test_immediate_apply(self):
        network = SimulatedNetwork()
        p0, p1 = make_peers(network)
        query = """
        import module namespace c = "urn:counter" at "c.xq";
        execute at {"xrpc://p1"} { c:bump("5") }
        """
        result = p0.execute_query(query)
        assert result.sequence == []
        assert p1.store.get("counter.xml").string_value() == "5"

    def test_lost_update_possible_without_isolation(self):
        # Two updating calls in one query, second overwrites first: the
        # paper notes rule R_Fu even allows lost updates.
        network = SimulatedNetwork()
        p0, p1 = make_peers(network)
        query = """
        import module namespace c = "urn:counter" at "c.xq";
        ( execute at {"xrpc://p1"} { c:bump("1") },
          execute at {"xrpc://p1"} { c:bump("2") } )
        """
        p0.execute_query(query, force_one_at_a_time=True)
        assert p1.store.get("counter.xml").string_value() == "2"


class TestUpdatesRulePrimeFu:
    """Rule R'_Fu: with isolation, updates defer to 2PC commit."""

    def test_updates_deferred_then_committed(self):
        network = SimulatedNetwork()
        p0, p1 = make_peers(network)
        query = """
        import module namespace c = "urn:counter" at "c.xq";
        declare option xrpc:isolation "repeatable";
        execute at {"xrpc://p1"} { c:bump("7") }
        """
        result = p0.execute_query(query)
        assert result.committed_2pc
        assert p1.store.get("counter.xml").string_value() == "7"
        # 2PC journal shows prepare before commit.
        actions = [action for action, _ in p1.isolation.log.records]
        assert actions == ["prepare", "commit"]

    def test_multi_peer_atomic_commit(self):
        network = SimulatedNetwork()
        p0, p1, p2 = make_peers(network, n=3)
        query = """
        import module namespace c = "urn:counter" at "c.xq";
        declare option xrpc:isolation "repeatable";
        ( execute at {"xrpc://p1"} { c:bump("1") },
          execute at {"xrpc://p2"} { c:bump("2") } )
        """
        result = p0.execute_query(query)
        assert result.committed_2pc
        assert p1.store.get("counter.xml").string_value() == "1"
        assert p2.store.get("counter.xml").string_value() == "2"

    def test_conflict_aborts_whole_transaction(self):
        network = SimulatedNetwork()
        p0, p1, p2 = make_peers(network, n=3)

        # A competing commit lands at p2 between snapshot and prepare.
        original_handle = p2.server.handle

        def interfering_handle(payload):
            response = original_handle(payload)
            if "request" in payload and "bump" in payload:
                p2.store.register("counter.xml", "<counter>x</counter>")
            return response

        network.register_peer("p2", interfering_handle)

        query = """
        import module namespace c = "urn:counter" at "c.xq";
        declare option xrpc:isolation "repeatable";
        ( execute at {"xrpc://p1"} { c:bump("1") },
          execute at {"xrpc://p2"} { c:bump("2") } )
        """
        with pytest.raises(TransactionError):
            p0.execute_query(query)
        # Atomicity: p1 must NOT have applied its update either.
        assert p1.store.get("counter.xml").string_value() == "0"

    def test_updates_invisible_before_commit(self):
        network = SimulatedNetwork()
        p0, p1 = make_peers(network)
        # Server-side check: defer_updates holds the PUL, store unchanged.
        query = """
        import module namespace c = "urn:counter" at "c.xq";
        declare option xrpc:isolation "repeatable";
        ( execute at {"xrpc://p1"} { c:bump("9") },
          execute at {"xrpc://p1"} { c:read() } )
        """
        result = p0.execute_query(query, force_one_at_a_time=True)
        # The read inside the same query sees the snapshot (pre-update).
        assert values(result.sequence) == ["0"]
        # After commit the update is in.
        assert p1.store.get("counter.xml").string_value() == "9"


class TestCoordinator:
    def _txn_peer(self, network, name):
        peer = XRPCPeer(name, network)
        peer.registry.register_source(COUNTER_MODULE, location="c.xq")
        peer.store.register("counter.xml", "<counter>0</counter>")
        return peer

    def test_explicit_coordinator_flow(self):
        network = SimulatedNetwork()
        p0 = self._txn_peer(network, "p0")
        p1 = self._txn_peer(network, "p1")
        query_id = QueryID(host="p0", timestamp=network.clock.now(), timeout=60)

        # Manually drive one updating call with isolation.
        from repro.rpc.client import ClientSession
        from repro.xdm.atomic import string as make_string
        session = ClientSession(network, origin="p0", query_id=query_id)
        session.call("p1", "urn:counter", "c.xq", "bump", 1,
                     [[[make_string("4")]]], updating=True)

        coordinator = TransactionCoordinator(network, query_id)
        for participant in session.participants:
            coordinator.register(participant)
        outcome = coordinator.run()
        assert outcome.committed
        assert coordinator.state == "committed"
        assert p1.store.get("counter.xml").string_value() == "4"

    def test_prepare_is_idempotent(self):
        network = SimulatedNetwork()
        p0 = self._txn_peer(network, "p0")
        p1 = self._txn_peer(network, "p1")
        query_id = QueryID(host="p0", timestamp=0.0, timeout=60)
        from repro.rpc.client import ClientSession
        from repro.xdm.atomic import string as make_string
        session = ClientSession(network, origin="p0", query_id=query_id)
        session.call("p1", "urn:counter", "c.xq", "bump", 1,
                     [[[make_string("4")]]], updating=True)
        coordinator = TransactionCoordinator(network, query_id)
        coordinator.register("p1")
        assert coordinator.prepare().votes == {"p1": True}
        # Second prepare on the participant: still fine (idempotent).
        assert p1.isolation._state(query_id).state == "prepared"

    def test_commit_without_prepare_rejected(self):
        network = SimulatedNetwork()
        query_id = QueryID(host="p0", timestamp=0.0, timeout=60)
        coordinator = TransactionCoordinator(network, query_id)
        with pytest.raises(TransactionError):
            coordinator.commit()

    def test_rollback_discards_updates(self):
        network = SimulatedNetwork()
        p0 = self._txn_peer(network, "p0")
        p1 = self._txn_peer(network, "p1")
        query_id = QueryID(host="p0", timestamp=0.0, timeout=60)
        from repro.rpc.client import ClientSession
        from repro.xdm.atomic import string as make_string
        session = ClientSession(network, origin="p0", query_id=query_id)
        session.call("p1", "urn:counter", "c.xq", "bump", 1,
                     [[[make_string("4")]]], updating=True)
        coordinator = TransactionCoordinator(network, query_id)
        coordinator.register("p1")
        coordinator.rollback()
        assert p1.store.get("counter.xml").string_value() == "0"
