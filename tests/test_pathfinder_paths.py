"""Relational path pushdown: pathfinder-vs-interpreter equivalence.

Every lifted axis/name-test combination must compile through
:class:`LoopLiftingCompiler` (no ``UnsupportedExpression``) and return
results identical to the tree interpreter — same nodes, document order,
no duplicates — over the XMark documents of the paper's experiment.
Axes outside the lifted core must fall back with a message naming the
offending AST node type, which the engine records as telemetry.
"""

import pytest

from repro.engine.base import Engine
from repro.pathfinder import LoopLiftedQuery, UnsupportedExpression
from repro.workloads.xmark import XMarkConfig, generate_auctions, generate_persons
from repro.xdm.nodes import Node
from repro.xml import parse_document
from repro.xml.serializer import serialize_sequence
from repro.xquery.evaluator import evaluate_query

CONFIG = XMarkConfig(persons=12, closed_auctions=30, open_auctions=6,
                     matches=3)


@pytest.fixture(scope="module")
def resolver():
    documents = {
        "persons.xml": parse_document(generate_persons(CONFIG),
                                      uri="persons.xml"),
        "auctions.xml": parse_document(generate_auctions(CONFIG),
                                       uri="auctions.xml"),
    }
    return documents.get


def assert_equivalent(query, resolver, context_item=None, nonempty=True):
    """Lifted and interpreted results must be the *same* sequence."""
    lifted = LoopLiftedQuery(query, doc_resolver=resolver).run(
        context_item=context_item)
    interpreted = evaluate_query(query, doc_resolver=resolver,
                                 context_item=context_item)
    assert len(lifted) == len(interpreted)
    for left, right in zip(lifted, interpreted):
        if isinstance(left, Node) or isinstance(right, Node):
            assert left is right  # same node identity, not just equal text
    assert serialize_sequence(lifted) == serialize_sequence(interpreted)
    if nonempty:
        assert lifted, f"query unexpectedly empty: {query}"
    return lifted


class TestLiftedAxes:
    """child / descendant / descendant-or-self / attribute / self, with
    name tests, wildcards and kind tests."""

    def test_child_chain(self, resolver):
        assert_equivalent(
            "doc('persons.xml')/site/people/person/name", resolver)

    def test_descendant_name(self, resolver):
        assert_equivalent("doc('auctions.xml')//closed_auction", resolver)

    def test_descendant_then_child(self, resolver):
        assert_equivalent("doc('auctions.xml')//closed_auction/price",
                          resolver)

    def test_descendant_or_self(self, resolver):
        assert_equivalent(
            "doc('auctions.xml')//annotation/descendant-or-self::text()",
            resolver)

    def test_attribute_axis(self, resolver):
        assert_equivalent("doc('auctions.xml')//buyer/@person", resolver)

    def test_attribute_wildcard(self, resolver):
        assert_equivalent("doc('auctions.xml')//seller/@*", resolver)

    def test_self_axis(self, resolver):
        assert_equivalent(
            "doc('persons.xml')//person/self::person/name", resolver)

    def test_parent_axis(self, resolver):
        assert_equivalent(
            "doc('persons.xml')//person/parent::people", resolver)

    def test_parent_axis_abbreviated(self, resolver):
        assert_equivalent("doc('persons.xml')//name/../address", resolver)

    def test_parent_axis_dedup_across_iterations(self, resolver):
        # Children of one parent share it: per-iteration contexts keep
        # one row each, a whole-sequence step deduplicates.
        assert_equivalent(
            "let $n := doc('persons.xml')//name "
            "return $n/parent::person", resolver)

    def test_parent_of_attribute_is_owner(self, resolver):
        assert_equivalent(
            "doc('auctions.xml')//buyer/@person/parent::buyer", resolver)

    def test_parent_wildcard(self, resolver):
        assert_equivalent("doc('persons.xml')//city/parent::*", resolver)

    def test_wildcard_name(self, resolver):
        assert_equivalent("doc('persons.xml')/site/people/person/*",
                          resolver)

    def test_text_kind_test(self, resolver):
        assert_equivalent("doc('persons.xml')//name/text()", resolver)

    def test_document_order_and_dedup_over_nested_contexts(self, resolver):
        # $n holds nested nodes (site contains every annotation), so a
        # naive union of per-node scans would duplicate: the staircase
        # prune must emit each descendant exactly once, in order.
        result = assert_equivalent(
            "let $n := (doc('auctions.xml')/site, "
            "doc('auctions.xml')//annotation) "
            "return $n/descendant::text()", resolver)
        keys = [node.order_key for node in result]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))


class TestEmptyAndIteration:
    def test_empty_result_absent_rows(self, resolver):
        assert_equivalent("doc('persons.xml')//nonexistent", resolver,
                          nonempty=False)

    def test_empty_per_iteration(self, resolver):
        # Rows absent for every iteration; the loop relation keeps the
        # iterations alive (empty sequences are representable).
        assert_equivalent(
            "for $p in doc('persons.xml')//person return $p/nonexistent",
            resolver, nonempty=False)

    def test_multi_iteration_flwor(self, resolver):
        assert_equivalent(
            "for $p in doc('persons.xml')//person return $p/name",
            resolver)

    def test_nested_flwor_with_paths(self, resolver):
        assert_equivalent(
            "for $ca in doc('auctions.xml')//closed_auction "
            "for $b in $ca/buyer return $b/@person", resolver)

    def test_where_clause_with_path_condition(self, resolver):
        assert_equivalent(
            "for $ca in doc('auctions.xml')//closed_auction "
            "where $ca/buyer/@person = 'person0' "
            "return $ca/itemref/@item", resolver)

    def test_relative_path_over_variable_sequence(self, resolver):
        assert_equivalent(
            "let $people := doc('persons.xml')//person "
            "return $people/address/city", resolver)


class TestPredicates:
    def test_attribute_equality_predicate(self, resolver):
        assert_equivalent(
            "doc('auctions.xml')//closed_auction"
            "[buyer/@person = 'person0']/price", resolver)

    def test_existence_predicate(self, resolver):
        assert_equivalent(
            "doc('auctions.xml')//open_auction[bidder]/initial", resolver)

    def test_predicate_inside_flwor(self, resolver):
        assert_equivalent(
            "for $id in ('person0', 'person1', 'person999') "
            "return doc('persons.xml')//person[@id = $id]/name",
            resolver)

    def test_positional_predicate_lifts(self, resolver):
        assert_equivalent("doc('persons.xml')//person[1]/name", resolver)

    def test_positional_last_lifts(self, resolver):
        assert_equivalent("doc('persons.xml')//person[last()]/name", resolver)

    def test_position_comparison_lifts(self, resolver):
        assert_equivalent(
            "doc('persons.xml')//person/*[position() >= 2]", resolver)

    def test_positional_on_reverse_axis(self, resolver):
        assert_equivalent(
            "doc('persons.xml')//city/ancestor::*[2]", resolver)
        assert_equivalent(
            "doc('persons.xml')//city/preceding::name[1]", resolver)

    def test_positional_mixed_with_boolean_predicate(self, resolver):
        assert_equivalent(
            "doc('auctions.xml')//closed_auction[seller]/*[2]", resolver)

    def test_out_of_range_positions_are_empty(self, resolver):
        assert_equivalent("doc('persons.xml')//person[0]", resolver,
                          nonempty=False)
        assert_equivalent("doc('persons.xml')//person[1.5]", resolver,
                          nonempty=False)


class TestContextItemRoots:
    def test_absolute_path(self, resolver):
        document = resolver("persons.xml")
        assert_equivalent("/site/people/person/name", resolver,
                          context_item=document)

    def test_root_descendant_path(self, resolver):
        document = resolver("auctions.xml")
        assert_equivalent("//closed_auction/buyer", resolver,
                          context_item=document)

    def test_relative_path_from_context(self, resolver):
        element = resolver("persons.xml").root_element
        assert_equivalent("people/person/emailaddress", resolver,
                          context_item=element)

    def test_context_item_expression(self, resolver):
        element = resolver("persons.xml").root_element
        assert_equivalent("./people/person/name", resolver,
                          context_item=element)


class TestClosedAxes:
    """The axes that used to bail to the interpreter now lift as window
    kernels and match it node for node."""

    @pytest.mark.parametrize("query", [
        "doc('persons.xml')//person/ancestor::site",
        "doc('persons.xml')//city/ancestor::person/name",
        "doc('persons.xml')//city/ancestor-or-self::*",
        "doc('persons.xml')//name/following::person",
        "doc('persons.xml')//address/preceding::name",
        "doc('persons.xml')//person/following-sibling::person",
        "doc('auctions.xml')//seller/following-sibling::itemref",
        "doc('auctions.xml')//itemref/preceding-sibling::seller",
        "doc('auctions.xml')//seller/following::price",
        "doc('auctions.xml')//price/preceding::seller",
    ])
    def test_closed_axis_equivalence(self, resolver, query):
        assert_equivalent(query, resolver)


class TestFallbackTelemetry:
    """Unsupported constructs name their AST node type uniformly and
    carry a stable code, and the engine records plan choice + reason."""

    @pytest.mark.parametrize("query,node_type,code", [
        ("<wrapper/>", "DirectElement", "expr-not-lifted"),
        ("for $x in (2, 1) order by $x return $x", "OrderByClause",
         "clause-not-lifted"),
        ("count(doc('persons.xml')//person)", "FunctionCall",
         "function-not-lifted"),
        ("doc('persons.xml')//person[name is name]", "Comparison",
         "comparison-not-lifted"),
    ])
    def test_fallback_names_node_type(self, resolver, query, node_type, code):
        with pytest.raises(UnsupportedExpression) as excinfo:
            LoopLiftedQuery(query, doc_resolver=resolver).run()
        assert str(excinfo.value).startswith(node_type + ":")
        assert excinfo.value.code == code

    def test_engine_records_lifted_plan(self, resolver):
        engine = Engine()
        result = engine.execute_lifted("doc('persons.xml')//person/name",
                                       doc_resolver=resolver)
        assert engine.last_plan == "lifted"
        assert engine.last_fallback_reason is None
        assert len(result) == CONFIG.persons

    def test_engine_falls_back_with_reason(self, resolver):
        engine = Engine()
        result = engine.execute_lifted(
            "count(doc('persons.xml')//person)", doc_resolver=resolver)
        assert engine.last_plan == "interpreter"
        assert engine.last_fallback_reason.startswith("FunctionCall:")
        assert engine.last_fallback_code == "function-not-lifted"
        assert engine.fallback_stats() == {"function-not-lifted": 1}
        assert len(result) == 1

    def test_formerly_falling_axes_now_run_lifted(self, resolver):
        engine = Engine()
        result = engine.execute_lifted(
            "doc('persons.xml')//name/ancestor::person",
            doc_resolver=resolver)
        assert engine.last_plan == "lifted"
        assert engine.last_fallback_reason is None
        assert engine.fallback_stats() == {}
        assert len(result) == CONFIG.persons

    def test_engine_fallback_matches_interpreter(self, resolver):
        engine = Engine()
        query = "count(doc('auctions.xml')//closed_auction)"
        result = engine.execute_lifted(query, doc_resolver=resolver)
        expected = evaluate_query(query, doc_resolver=resolver)
        assert serialize_sequence(result) == serialize_sequence(expected)

    def test_fn_doc_without_resolver_falls_back(self):
        with pytest.raises(UnsupportedExpression, match="FunctionCall"):
            LoopLiftedQuery("doc('persons.xml')//person").run()
