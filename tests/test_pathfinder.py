"""Loop-lifting compiler tests, culminating in the Figure 1 reproduction."""

import pytest

from repro.pathfinder import LoopLiftedQuery, UnsupportedExpression
from repro.xdm.atomic import string
from tests.helpers import strings, values

FILM_MODULE = """
module namespace f = "films";
declare function f:filmsByActor($actor as xs:string) as node()* { () };
"""


def make_registry():
    from repro.xquery.modules import ModuleRegistry
    registry = ModuleRegistry()
    registry.register_source(FILM_MODULE, location="film.xq")
    return registry


class TestCoreLifting:
    def run(self, query, **kwargs):
        return LoopLiftedQuery(query, registry=make_registry(), **kwargs).run()

    def test_literal(self):
        assert values(self.run("42")) == [42]

    def test_sequence(self):
        assert values(self.run("(1, 2, 3)")) == [1, 2, 3]

    def test_range(self):
        assert values(self.run("1 to 4")) == [1, 2, 3, 4]

    def test_for_loop(self):
        assert values(self.run("for $x in (10, 20) return $x")) == [10, 20]

    def test_nested_loops_q5(self):
        # The paper's Q5: all four iterations yield ($x, $y).
        query = ("for $x in (10, 20) return for $y in (100, 200) "
                 "let $z := ($x, $y) return $z")
        assert values(self.run(query)) == [10, 100, 10, 200, 20, 100, 20, 200]

    def test_let(self):
        assert values(self.run("let $x := 5 return ($x, $x)")) == [5, 5]

    def test_arithmetic_lifted(self):
        assert values(self.run("for $x in (1, 2) return $x * 10")) == [10, 20]

    def test_where(self):
        query = "for $x in (1, 2, 3, 4) where $x > 2 return $x"
        assert values(self.run(query)) == [3, 4]

    def test_concat_lifted(self):
        query = ("for $n in ('Julie', 'Sean') "
                 "return concat($n, ' ', 'Connery')")
        assert values(self.run(query)) == ["Julie Connery", "Sean Connery"]

    def test_unsupported_falls_out(self):
        with pytest.raises(UnsupportedExpression):
            self.run("<a/>")


class TestLoopLiftedExecuteAt:
    """The Figure 1 / Figure 2 translation on the Q3-shaped query."""

    Q3 = """
    import module namespace f="films" at "film.xq";
    for $actor in ("Julie Andrews", "Sean Connery")
    for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
    return execute at {$dst} { f:filmsByActor($actor) }
    """

    FILMS = {
        ("y.example.org", "Julie Andrews"): [],
        ("y.example.org", "Sean Connery"): ["The Rock", "Goldfinger"],
        ("z.example.org", "Julie Andrews"): ["Sound Of Music"],
        ("z.example.org", "Sean Connery"): [],
    }

    def _dispatch(self, log):
        def dispatch(peer, module, location, function, arity, calls, updating):
            from repro.net.transport import normalize_peer_uri
            key = normalize_peer_uri(peer)
            log.append((key, [c[0][0].string_value() for c in calls]))
            return [
                [string(name) for name in self.FILMS[(key, c[0][0].string_value())]]
                for c in calls
            ]
        return dispatch

    def test_one_bulk_request_per_peer(self):
        log = []
        query = LoopLiftedQuery(self.Q3, registry=make_registry(),
                                dispatch=self._dispatch(log))
        query.run()
        assert len(log) == 2
        # Each peer receives both actors' calls in ONE request, in
        # iteration order — the out-of-order processing of section 3.2.
        assert log[0] == ("y.example.org", ["Julie Andrews", "Sean Connery"])
        assert log[1] == ("z.example.org", ["Julie Andrews", "Sean Connery"])

    def test_final_result_order_restored(self):
        query = LoopLiftedQuery(self.Q3, registry=make_registry(),
                                dispatch=self._dispatch([]))
        result = query.run()
        # Despite out-of-order bulk execution, the merge-union on iter
        # restores the query's iteration order: Julie@z (iter 2), then
        # Sean@y (iter 3); iters 1 and 4 are empty.
        assert values(result) == ["Sound Of Music", "The Rock", "Goldfinger"]

    def test_figure_1_intermediate_tables(self):
        """Assert the exact map/req/msg/res tables of Figure 1."""
        query = LoopLiftedQuery(self.Q3, registry=make_registry(),
                                dispatch=self._dispatch([]), trace=True)
        result = query.run()
        [trace] = query.trace

        y_entry, z_entry = trace["per_peer"]

        # map_p1: iters 1,3 (odd iterations go to y) -> iterp 1,2
        assert y_entry["map"].rows == [(1, 1), (3, 2)]
        # map_p2: iters 2,4 -> iterp 1,2
        assert z_entry["map"].rows == [(2, 1), (4, 2)]

        # req_p1: per-call parameter table (iterp|pos|item)
        [req_y] = y_entry["req"]
        assert [(r[0], r[1], r[2].string_value()) for r in req_y.rows] == [
            (1, 1, "Julie Andrews"), (2, 1, "Sean Connery")]

        # msg_p1: y answers iterp 2 with two films
        msg_y = y_entry["msg"]
        assert [(r[0], r[1], r[2].string_value()) for r in msg_y.rows] == [
            (2, 1, "The Rock"), (2, 2, "Goldfinger")]

        # msg_p2: z answers iterp 1 with one film
        msg_z = z_entry["msg"]
        assert [(r[0], r[1], r[2].string_value()) for r in msg_z.rows] == [
            (1, 1, "Sound Of Music")]

        # res_p1 mapped back to original iters
        res_y = y_entry["res"]
        assert [(r[0], r[1], r[2].string_value()) for r in res_y.rows] == [
            (3, 1, "The Rock"), (3, 2, "Goldfinger")]
        res_z = z_entry["res"]
        assert [(r[0], r[1], r[2].string_value()) for r in res_z.rows] == [
            (2, 1, "Sound Of Music")]

        # Final merge-union, ordered by iter:
        final = trace["result"]
        assert [(r[0], r[1], r[2].string_value()) for r in final.rows] == [
            (2, 1, "Sound Of Music"),
            (3, 1, "The Rock"),
            (3, 2, "Goldfinger"),
        ]
        assert strings(result) == ["Sound Of Music", "The Rock", "Goldfinger"]

    def test_constant_destination_single_request(self):
        log = []
        query_text = """
        import module namespace f="films" at "film.xq";
        for $actor in ("Julie Andrews", "Sean Connery")
        let $dst := "xrpc://y.example.org"
        return execute at {$dst} { f:filmsByActor($actor) }
        """
        query = LoopLiftedQuery(query_text, registry=make_registry(),
                                dispatch=self._dispatch(log))
        result = query.run()
        assert len(log) == 1  # the paper's Q2: one bulk message total
        assert values(result) == ["The Rock", "Goldfinger"]

    def test_position_variable(self):
        query = LoopLiftedQuery(
            "for $x at $i in ('a', 'b', 'c') return $i",
            registry=make_registry())
        assert values(query.run()) == [1, 2, 3]
