"""Deep-tree regression tests: ~5000-level trees must survive every
hot-path tree operation under the *default* recursion limit.

``Node.descendants`` was made iterative in an earlier PR; these tests
pin the remaining paths named by the ROADMAP — ``copy_tree`` (the XRPC
call-by-value copy), ``serialize`` (marshal), ``parse_document`` and
``reencode_tree`` — plus the full round-trip through all of them.
"""

import sys

import pytest

from repro.xdm.nodes import NodeFactory, copy_tree
from repro.xdm.structural import reencode_tree, structural_index
from repro.xml import parse_document
from repro.xml.serializer import serialize

DEPTH = 5000


def build_spine(depth: int = DEPTH) -> tuple:
    """A root with one child per level, an attribute every 100 levels,
    and a text leaf — stamped by the factory like the parsers stamp."""
    factory = NodeFactory()
    root = factory.element("spine", level=0)
    current = root
    for index in range(depth):
        child = factory.element("level", level=index + 1)
        if index % 100 == 0:
            child.set_attribute(factory.attribute(
                "depth", str(index), level=index + 2))
        current.append(child)
        current = child
    current.append(factory.text("leaf", level=depth + 1))
    # Single-spine tree: every element's subtree extends to the last
    # serial issued, so the parse-style size stamp is closed-form
    # (serial units — serials are gapped by the factory stride).
    root.size = factory.last_serial - root.order_key[1]
    for node in root.descendants():
        if node.children:
            node.size = factory.last_serial - node.order_key[1]
    return root, current


@pytest.fixture(scope="module")
def spine():
    assert sys.getrecursionlimit() <= 5000, \
        "deep-tree tests assume the default recursion limit"
    return build_spine()


class TestDeepCopy:
    def test_copy_tree_survives(self, spine):
        root, _leaf = spine
        copy = copy_tree(root)
        assert copy.local_name == "spine"
        assert copy.parent is None

    def test_copy_preserves_single_pass_stamps(self, spine):
        root, _leaf = spine
        copy = copy_tree(root)
        # Dense serials in document order, sizes covering each subtree,
        # levels equal to construction depth — identical to the source.
        originals = [root] + list(root.descendants())
        copies = [copy] + list(copy.descendants())
        assert len(originals) == len(copies)
        for original, copied in zip(originals, copies):
            assert copied.order_key[1] == original.order_key[1]
            assert copied.size == original.size
            assert copied.level == original.level
        for original, copied in zip(originals, copies):
            assert [a.value for a in copied.attributes] == \
                [a.value for a in original.attributes]

    def test_copy_has_fresh_identity(self, spine):
        root, _leaf = spine
        copy = copy_tree(root)
        assert copy is not root
        assert copy.order_key[0] != root.order_key[0]


class TestDeepAtomize:
    def test_string_value_survives(self, spine):
        # Atomization (fn:string / typed_value) of a deep tree sits on
        # the XRPC marshal hot path; the nested-generator recursion
        # overflowed here before.
        root, _leaf = spine
        assert root.string_value() == "leaf"


class TestDeepSerialize:
    def test_serialize_survives(self, spine):
        root, _leaf = spine
        text = serialize(root)
        assert text.startswith("<spine>")
        assert text.endswith("</spine>")
        assert "leaf" in text

    def test_serialize_indent_survives(self, spine):
        root, _leaf = spine
        text = serialize(root, indent=True)
        assert text.startswith("<spine>")

    def test_serialize_matches_piecewise_reconstruction(self):
        # Byte-identity against the obvious recursive serialization on a
        # shallow tree with the tricky features (namespaces, mixed
        # content, comments, PIs, escaping).
        doc = parse_document(
            '<a xmlns:p="urn:x" p:y="1"><b>t &amp; u</b><!--c-->'
            "<?pi data?><c/>mixed</a>")
        text = serialize(doc)
        assert text == ('<a xmlns:p="urn:x" p:y="1"><b>t &amp; u</b><!--c-->'
                        "<?pi data?><c/>mixed</a>")


class TestDeepParse:
    def test_parse_survives(self, spine):
        root, _leaf = spine
        document = parse_document(serialize(root))
        assert document.root_element.local_name == "spine"
        # Parser stamps match the construction stamps.
        reparsed = [document.root_element] + \
            list(document.root_element.descendants())
        originals = [root] + list(root.descendants())
        assert [n.size for n in reparsed] == [n.size for n in originals]
        # Parsed trees hang below a document node, shifting depth by one.
        assert [n.level - 1 for n in reparsed] == \
            [n.level for n in originals]


class TestDeepRoundTrip:
    def test_copy_reencode_serialize_parse(self, spine):
        root, _leaf = spine
        copy = copy_tree(root)
        reencode_tree(copy)
        text = serialize(copy)
        document = parse_document(text)
        assert serialize(document.root_element) == text
        # The re-encoded copy and the re-parsed tree agree on structure.
        index_copy = structural_index(copy)
        index_parsed = structural_index(document.root_element)
        assert index_copy.sizes == index_parsed.sizes
        assert index_copy.levels == index_parsed.levels

    def test_structural_index_on_deep_copy(self, spine):
        root, _leaf = spine
        copy = copy_tree(root)
        index = structural_index(copy)
        assert len(index.nodes) == DEPTH + 2  # spine + levels + text leaf
        # Descendant window of the root covers the whole spine.
        assert index.sizes[0] == DEPTH + 1
