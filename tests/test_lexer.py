"""Unit tests for the XQuery lexer."""

import pytest

from repro.errors import StaticError
from repro.xquery.lexer import Lexer


def tokens(source: str) -> list[tuple[str, str]]:
    lexer = Lexer(source)
    result = []
    while True:
        token = lexer.next()
        if token.kind == "EOF":
            return result
        result.append((token.kind, token.value))


class TestBasicTokens:
    def test_integer(self):
        assert tokens("42") == [("INTEGER", "42")]

    def test_decimal(self):
        assert tokens("3.14") == [("DECIMAL", "3.14")]

    def test_double(self):
        assert tokens("1e3 2.5E-2") == [("DOUBLE", "1e3"), ("DOUBLE", "2.5E-2")]

    def test_string_single_and_double_quotes(self):
        assert tokens("'a' \"b\"") == [("STRING", "a"), ("STRING", "b")]

    def test_string_doubled_quote_escape(self):
        assert tokens('"he said ""hi"""') == [("STRING", 'he said "hi"')]

    def test_string_entities(self):
        assert tokens("'&lt;&amp;'") == [("STRING", "<&")]

    def test_variable(self):
        assert tokens("$actor") == [("VAR", "actor")]

    def test_prefixed_variable(self):
        assert tokens("$f:x") == [("VAR", "f:x")]

    def test_qname(self):
        assert tokens("film:filmsByActor") == [("NAME", "film:filmsByActor")]

    def test_wildcard_qname(self):
        assert tokens("p:*") == [("NAME", "p:*")]

    def test_name_with_dots_and_dashes(self):
        assert tokens("starts-with doc-available") == [
            ("NAME", "starts-with"), ("NAME", "doc-available")]


class TestSymbols:
    @pytest.mark.parametrize("source,expected", [
        (":=", [":="]),
        ("<<", ["<<"]),
        (">=", [">="]),
        ("!=", ["!="]),
        ("//", ["//"]),
        ("..", [".."]),
        ("( )", ["(", ")"]),
        ("+ - * |", ["+", "-", "*", "|"]),
    ])
    def test_symbol(self, source, expected):
        assert [v for _, v in tokens(source)] == expected

    def test_axis_not_merged_into_qname(self):
        # 'child::a' must lex as NAME 'child', then '::' handling is the
        # parser's job — the lexer must not produce 'child::a'.
        lexer = Lexer("child::a")
        first = lexer.next()
        assert first == ("NAME", "child", 0) or (first.kind, first.value) == ("NAME", "child")


class TestComments:
    def test_comment_skipped(self):
        assert tokens("1 (: note :) 2") == [("INTEGER", "1"), ("INTEGER", "2")]

    def test_nested_comments(self):
        assert tokens("(: outer (: inner :) still :) 5") == [("INTEGER", "5")]

    def test_unterminated_comment(self):
        with pytest.raises(StaticError):
            tokens("(: never closed")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(StaticError):
            tokens("'open")

    def test_bad_number(self):
        with pytest.raises(StaticError):
            tokens("12abc")

    def test_error_location(self):
        lexer = Lexer("1 +\n  'bad")
        lexer.next()
        lexer.next()
        with pytest.raises(StaticError) as info:
            lexer.next()
        # Uniform location format: every parse/static error ends with
        # '(at line:column)' and carries structured attributes.
        assert "(at 2:3)" in str(info.value)
        assert info.value.line == 2
        assert info.value.column == 3

    def test_error_location_first_line(self):
        with pytest.raises(StaticError) as info:
            tokens("12abc")
        assert "(at 1:1)" in str(info.value)
        assert (info.value.line, info.value.column) == (1, 1)

    def test_source_location_helper(self):
        from repro.xquery.lexer import source_location
        text = "ab\ncd\nef"
        assert source_location(text, 0) == (1, 1)
        assert source_location(text, 3) == (2, 1)
        assert source_location(text, 7) == (3, 2)


class TestSaveRestore:
    def test_backtracking(self):
        lexer = Lexer("for $x in")
        saved = lexer.save()
        assert lexer.next().value == "for"
        assert lexer.next().kind == "VAR"
        lexer.restore(saved)
        assert lexer.next().value == "for"

    def test_peek_does_not_consume(self):
        lexer = Lexer("a b")
        assert lexer.peek().value == "a"
        assert lexer.next().value == "a"
        assert lexer.next().value == "b"
