"""XRPC wrapper tests (section 4): cross-system interop without native XRPC."""

import pytest

from repro.engine import TreeEngine
from repro.errors import XRPCFault
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.soap import XRPCRequest, build_request, parse_response
from repro.wrapper import XRPCWrapper, generate_wrapper_query
from repro.xdm import integer, string, xs
from tests.helpers import xml

GETPERSON_MODULE = """
module namespace func = "functions";
declare function func:getPerson($doc as xs:string,
                                $pid as xs:string) as node()?
{ zero-or-one(doc($doc)//person[@id = $pid]) };
declare function func:echoVoid() { () };
declare function func:echoInt($x as xs:integer) as xs:integer { $x };
"""

PEOPLE = """<site><people>
<person id="person0"><name>Kasidit Treweek</name></person>
<person id="person1"><name>Jaana Ge</name></person>
<person id="person2"><name>Wang Yong</name></person>
</people></site>"""


@pytest.fixture
def wrapper():
    wrapper = XRPCWrapper(engine=TreeEngine())
    wrapper.engine.registry.register_source(
        GETPERSON_MODULE, location="http://example.org/functions.xq")
    wrapper.store.register("auctions.xml", PEOPLE)
    return wrapper


def make_request(method, calls, arity):
    request = XRPCRequest(module="functions", method=method, arity=arity,
                          location="http://example.org/functions.xq")
    for params in calls:
        request.add_call(params)
    return build_request(request)


class TestGeneratedQuery:
    def test_shape_matches_figure_3(self):
        query = generate_wrapper_query(
            "functions", "http://example.org/functions.xq", "getPerson", 2,
            "/tmp/requestXXX.xml")
        assert 'import module namespace func = "functions"' in query
        assert 'doc("/tmp/requestXXX.xml")//xrpc:call' in query
        assert "$param1 := w:n2s($call/xrpc:sequence[1])" in query
        assert "$param2 := w:n2s($call/xrpc:sequence[2])" in query
        assert "w:s2n(func:getPerson($param1, $param2))" in query

    def test_zero_arity(self):
        query = generate_wrapper_query("m", None, "echoVoid", 0, "/tmp/r.xml")
        assert "func:echoVoid()" in query


class TestWrapperService:
    def test_get_person_single_call(self, wrapper):
        payload = make_request(
            "getPerson",
            [[[string("auctions.xml")], [string("person1")]]], arity=2)
        response = parse_response(wrapper.handle(payload))
        [result] = response.results
        assert len(result) == 1
        assert result[0].get_attribute("id").value == "person1"
        assert result[0].string_value() == "Jaana Ge"

    def test_get_person_no_match_empty_sequence(self, wrapper):
        payload = make_request(
            "getPerson",
            [[[string("auctions.xml")], [string("nobody")]]], arity=2)
        response = parse_response(wrapper.handle(payload))
        assert response.results == [[]]

    def test_bulk_request_one_result_per_call(self, wrapper):
        calls = [
            [[string("auctions.xml")], [string("person2")]],
            [[string("auctions.xml")], [string("person0")]],
            [[string("auctions.xml")], [string("missing")]],
        ]
        payload = make_request("getPerson", calls, arity=2)
        response = parse_response(wrapper.handle(payload))
        assert len(response.results) == 3
        assert response.results[0][0].string_value() == "Wang Yong"
        assert response.results[1][0].string_value() == "Kasidit Treweek"
        assert response.results[2] == []

    def test_echo_void(self, wrapper):
        payload = make_request("echoVoid", [[]], arity=0)
        response = parse_response(wrapper.handle(payload))
        assert response.results == [[]]

    def test_atomic_round_trip_through_wrapper(self, wrapper):
        payload = make_request("echoInt", [[[integer(7)]]], arity=1)
        response = parse_response(wrapper.handle(payload))
        [result] = response.results
        assert result[0].type is xs.integer
        assert result[0].value == 7

    def test_timings_recorded(self, wrapper):
        payload = make_request("echoVoid", [[]], arity=0)
        wrapper.handle(payload)
        timings = wrapper.last_timings
        assert timings.total_seconds > 0
        assert timings.compile_seconds > 0
        assert timings.calls == 1

    def test_unknown_module_returns_fault(self):
        bare = XRPCWrapper(engine=TreeEngine())
        request = XRPCRequest(module="ghost", method="f", arity=0)
        request.add_call([])
        raw = bare.handle(build_request(request))
        with pytest.raises(XRPCFault):
            parse_response(raw)

    def test_call_by_value_inside_wrapper(self, wrapper):
        # The wrapped engine receives fresh fragments: a node param's
        # parent axis must be empty inside the user function.
        module = """
        module namespace func = "par";
        declare function func:hasParent($n as node()) as xs:boolean
        { exists($n/..) };
        """
        wrapper.engine.registry.register_source(module, location="par.xq")
        from repro.xml import parse_fragment
        node = parse_fragment("<x><y/></x>").children[0]
        request = XRPCRequest(module="par", method="hasParent", arity=1,
                              location="par.xq")
        request.add_call([[node]])
        response = parse_response(wrapper.handle(build_request(request)))
        # document{}-copied fragments have a document parent, not the
        # original tree: exists($n/..) is true but it's a *document* node.
        # What matters is the original <x> ancestor is unreachable, which
        # the next test asserts directly.
        assert response.results[0][0].type is xs.boolean


class TestWrapperOnNetwork:
    def test_monet_peer_calls_wrapped_engine(self, wrapper):
        """MonetDB-style peer (native XRPC) calling a Saxon-style peer
        through the wrapper — the paper's interop demonstration."""
        network = SimulatedNetwork()
        p0 = XRPCPeer("monet.example.org", network)
        p0.registry.register_source(
            GETPERSON_MODULE, location="http://example.org/functions.xq")
        network.register_peer("saxon.example.org", wrapper.handle)

        query = """
        import module namespace func = "functions"
            at "http://example.org/functions.xq";
        for $pid in ("person0", "person2")
        return execute at {"xrpc://saxon.example.org"}
               { func:getPerson("auctions.xml", $pid) }
        """
        result = p0.execute_query(query)
        assert [n.string_value() for n in result.sequence] == \
            ["Kasidit Treweek", "Wang Yong"]
        # Bulk: both calls in one message even across systems.
        assert result.messages_sent == 1
