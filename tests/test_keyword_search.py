"""Keyword-search subsystem: postings, lifted contains, SLCA, fan-out.

The acceptance gates for :mod:`repro.search`:

* the whole :data:`~repro.workloads.xmark.KEYWORD_SUITE` executes with
  ``plan == "lifted"`` and returns exactly the interpreter's sequence,
  across gapped/dense encodings and accelerator on/off;
* every posting-list kernel is byte-identical to its tree-walking
  oracle (:mod:`repro.search.naive`), including across interleaved
  updates — where the postings must survive *un-rebuilt* (the
  incremental patch counters are asserted);
* stale postings can never surface deleted / renamed / rewritten
  nodes;
* dynamic ``contains`` needles fall back with the stable
  ``search-dynamic-needle`` code, predicted by the static analyzer;
* the distributed fan-out ships one bulk message per site and merges
  to the same result set as searching every peer locally.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.base import Engine
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.search.index import TermIndex, keyword_search, term_index_for
from repro.search.naive import naive_contains_scan, naive_search
from repro.search.stats import SEARCH_STATS
from repro.search.tokenizer import needle_token_spec, tokenize
from repro.session import Database
from repro.workloads.xmark import (
    KEYWORD_SUITE,
    XMarkConfig,
    generate_auctions,
    generate_persons,
)
from repro.xdm.nodes import ElementNode, Node
from repro.xml import parse_document
from repro.xml.serializer import escape_text, serialize_sequence
from repro.xquery.context import ExecutionContext
from repro.xquery.evaluator import evaluate_query

CONFIG = XMarkConfig(persons=10, closed_auctions=20, open_auctions=5,
                     matches=3)


def contains_matches(root: Node, needle: str) -> list[Node]:
    """Elements surviving the posting prefilter + exact verify."""
    plan = term_index_for(root).contains_plan(needle)
    return [node for node in root.root().descendants(include_self=True)
            if isinstance(node, ElementNode)
            and plan.candidate(node) and needle in node.string_value()]


def assert_search_equal(root: Node, terms) -> None:
    expected = [(hit.node, hit.score) for hit in naive_search(root, terms)]
    actual = [(hit.node, hit.score) for hit in keyword_search(root, terms)]
    assert actual == expected


# ---------------------------------------------------------------------------
# KEYWORD_SUITE: 100% lifted, interpreter-identical


@pytest.fixture(scope="module", params=[None, 1], ids=["gapped", "dense"])
def resolver(request):
    stride = request.param
    documents = {
        "persons.xml": parse_document(generate_persons(CONFIG),
                                      uri="persons.xml", stride=stride),
        "auctions.xml": parse_document(generate_auctions(CONFIG),
                                       uri="auctions.xml", stride=stride),
    }
    return documents.get


@pytest.mark.parametrize("accelerator", [True, False],
                         ids=["accel", "naive"])
@pytest.mark.parametrize("name", sorted(KEYWORD_SUITE))
def test_keyword_suite_runs_lifted(resolver, name, accelerator):
    query = KEYWORD_SUITE[name]
    engine = Engine(accelerator=accelerator)
    result, explain = engine.execute(query, ExecutionContext(
        doc_resolver=resolver, accelerator=accelerator))
    assert explain.plan == "lifted", (name, explain.fallback_reason)
    assert explain.fallback_reason is None
    assert engine.fallback_stats() == {}
    assert explain.search_queries > 0
    interpreted = evaluate_query(query, doc_resolver=resolver,
                                 accelerator=accelerator)
    assert len(result) == len(interpreted)
    for left, right in zip(result, interpreted):
        if isinstance(left, Node) or isinstance(right, Node):
            assert left is right
    assert serialize_sequence(result) == serialize_sequence(interpreted)
    assert result, f"keyword-suite query unexpectedly empty: {name}"


# ---------------------------------------------------------------------------
# TermIndex kernels vs the tree-walking oracles


SEAM_DOC = ("<doc>"
            "<d>worl<b/>dwide</d>"
            "<d>world<b/>wide</d>"
            "<e>wor<b/>ldw<b/>ide</e>"
            "<f>worldwide</f>"
            "<g>untouched</g>"
            "</doc>")

NEEDLES = ["worldwide", "widesh", "world", "wide", "orldwid",
           "rare vintage", "mailto:", "/2006", "--", "", "Wang",
           "no such needle at all"]


class TestContainsKernel:
    @pytest.mark.parametrize("needle", NEEDLES)
    def test_oracle_equal_on_xmark(self, needle):
        root = parse_document(generate_persons(CONFIG))
        assert contains_matches(root, needle) \
            == naive_contains_scan(root, needle)

    @pytest.mark.parametrize("needle",
                             ["worldwide", "ldwide", "worldw", "rldwi"])
    def test_seam_spanning_needles(self, needle):
        root = parse_document(SEAM_DOC)
        matches = contains_matches(root, needle)
        assert matches == naive_contains_scan(root, needle)
        # The seam cases genuinely exercise the pair machinery: the
        # needle must be found inside <d>/<e> joins, not only in <f>.
        assert len(matches) >= 2

    def test_multi_boundary_token(self):
        # "worldwide" spans TWO boundaries inside <e>: the first-crossed
        # boundary's tail continues into a further text.
        root = parse_document(SEAM_DOC)
        [element] = [node for node in root.descendants()
                     if isinstance(node, ElementNode) and node.name == "e"]
        plan = term_index_for(root).contains_plan("worldwide")
        assert plan.candidate(element)

    def test_window_bounded_no_false_positive_leak(self):
        # A token assembled across sibling elements' texts must not make
        # the *siblings* candidates — only ancestors containing the
        # whole seam.
        root = parse_document("<doc><a>worl</a><b>dwide</b></doc>")
        assert contains_matches(root, "worldwide") \
            == naive_contains_scan(root, "worldwide")

    def test_attribute_candidates(self):
        db = Database()
        db.register("d.xml", "<r><p id='alpha beta'/><p id='gamma'/></r>")
        lifted = db.execute("doc('d.xml')//p/@id[contains(., 'beta')]")
        oracle = Database(try_lifted=False)
        oracle.register("d.xml", "<r><p id='alpha beta'/><p id='gamma'/></r>")
        expected = oracle.execute("doc('d.xml')//p/@id[contains(., 'beta')]")
        assert serialize_sequence(lifted) == serialize_sequence(expected)
        assert len(lifted) == 1


class TestContainsScanKernel:
    """The full-document posting-anchored scan (the benchmark kernel)."""

    @pytest.mark.parametrize("needle", NEEDLES)
    def test_oracle_equal_on_xmark(self, needle):
        root = parse_document(generate_persons(CONFIG))
        assert term_index_for(root).contains_scan(needle) \
            == naive_contains_scan(root, needle)

    @pytest.mark.parametrize("needle",
                             ["worldwide", "ldwide", "worldw", "rldwi",
                              "world", "wide", "untouched"])
    def test_seam_spanning_needles(self, needle):
        root = parse_document(SEAM_DOC)
        assert term_index_for(root).contains_scan(needle) \
            == naive_contains_scan(root, needle)

    def test_window_bounded_no_false_positive_leak(self):
        root = parse_document("<doc><a>worl</a><b>dwide</b></doc>")
        scanned = term_index_for(root).contains_scan("worldwide")
        assert scanned == naive_contains_scan(root, "worldwide")
        # The occurrence spans both texts: only <doc> holds it, never
        # the sibling <a>/<b> leaves.
        assert [node.name for node in scanned] == ["doc"]

    def test_caches_invalidated_across_updates(self):
        db = Database()
        db.register("d.xml", "<doc><d>worl<b/>dwide</d><e>keep</e></doc>")
        root = db.store.get("d.xml")
        index = term_index_for(root)
        assert [node.name for node in index.contains_scan("worldwide")] \
            == ["doc", "d"]
        db.execute("delete node doc('d.xml')//d/text()[1]")
        root = db.store.get("d.xml")
        assert term_index_for(root) is index  # survived the PUL
        assert index.contains_scan("worldwide") \
            == naive_contains_scan(root, "worldwide") == []
        db.execute("replace value of node doc('d.xml')//e "
                   "with 'worldwide shipping'")
        root = db.store.get("d.xml")
        assert [node.name for node in index.contains_scan("worldwide")] \
            == ["doc", "e"]
        assert index.contains_scan("worldwide") \
            == naive_contains_scan(root, "worldwide")


class TestSLCAKernel:
    @pytest.mark.parametrize("terms", [
        ["auction"], ["rare", "vintage"], ["Main", "St"],
        ["person1"], ["auction", "person0"], ["nosuchterm"],
        ["rare", "nosuchterm"],
    ])
    def test_oracle_equal(self, terms):
        root = parse_document(generate_persons(CONFIG))
        assert_search_equal(root, terms)

    def test_attribute_terms_join_text_terms(self):
        root = parse_document(
            "<r><p id='k9'><t>alpha</t></p><p><t>alpha</t></p></r>")
        hits = keyword_search(root, ["alpha", "k9"])
        assert [hit.node.name for hit in hits] == ["p"]
        assert_search_equal(root, ["alpha", "k9"])

    def test_scores_count_term_frequency(self):
        root = parse_document("<r><a>lot lot lot</a><b>lot</b></r>")
        hits = keyword_search(root, ["lot"])
        assert [(h.node.name, h.score) for h in hits] == [("a", 1), ("b", 1)]
        # distinct-term granularity: one posting per (term, node)
        assert_search_equal(root, ["lot"])


# ---------------------------------------------------------------------------
# Incremental maintenance: postings survive PULs un-rebuilt, never stale


PERSONS_XML = generate_persons(CONFIG)


class TestIncrementalPostings:
    def updating_db(self):
        db = Database()
        db.register("p.xml", PERSONS_XML)
        return db

    def oracle(self, db, query):
        """The interpreter's answer over an identical separate copy."""
        other = Database(try_lifted=False)
        other.register("p.xml", db.store.get("p.xml"))
        return other.execute(query)

    def test_postings_survive_puls_unrebuilt(self):
        db = self.updating_db()
        db.search("auction")  # forces the index build
        before = SEARCH_STATS.snapshot()
        updates = [
            "insert node <person id='pZ'><name>Zanzibar Qwerty</name>"
            "</person> as last into doc('p.xml')/site/people",
            "delete node doc('p.xml')//person[2]",
            "replace value of node doc('p.xml')//person[1]/name "
            "with 'Vintage Collector'",
            "insert node attribute tag { 'zulu' } "
            "into doc('p.xml')//person[3]",
            "replace value of node doc('p.xml')//person[1]/@id "
            "with 'personX'",
        ]
        for update in updates:
            db.execute(update)
            root = db.store.get("p.xml")
            assert_search_equal(root, ["auction"])
            assert_search_equal(root, ["zanzibar", "qwerty"])
        after = SEARCH_STATS.snapshot()
        assert after["term_index_builds"] == before["term_index_builds"], \
            "a PUL caused a full TermIndex rebuild"
        assert after["postings_patched"] > before["postings_patched"]

    def test_deleted_nodes_never_surface(self):
        db = self.updating_db()
        index = term_index_for(db.store.get("p.xml"))
        target = db.execute("doc('p.xml')//person[4]/name/text()")[0]
        needle_term = tokenize(target.content)[0]
        assert needle_term in index._text_postings \
            or any(needle_term in tokenize(t.content) for t in [target])
        db.execute("delete node doc('p.xml')//person[4]")
        # the deleted text's serial is gone from every posting list
        for serials in index._text_postings.values():
            assert target.pre not in set(serials)
        assert target.pre not in set(index.text_serials)
        assert target.pre not in index._terms_at
        query = f"doc('p.xml')//person[contains(., '{needle_term}')]"
        assert serialize_sequence(db.execute(query)) \
            == serialize_sequence(self.oracle(db, query))

    def test_renamed_attribute_not_stale(self):
        db = Database()
        db.register("d.xml", "<r><p id='oldvalue'><t>word</t></p></r>")
        root = db.store.get("d.xml")
        index = term_index_for(root)
        assert "oldvalue" in index._attr_postings
        db.execute("rename node doc('d.xml')//p/@id as 'key'")
        # rename keeps the value; the posting must still resolve
        assert_search_equal(db.store.get("d.xml"), ["oldvalue"])
        db.execute("replace value of node doc('d.xml')//p/@key "
                   "with 'newvalue'")
        index = term_index_for(db.store.get("d.xml"))
        assert "oldvalue" not in index._attr_postings
        assert not db.search("oldvalue", uri="d.xml")
        assert [h.node.name for h in db.search("newvalue", uri="d.xml")] \
            == ["p"]

    def test_attribute_delete_evicts_postings(self):
        db = Database()
        db.register("d.xml", "<r><p id='zebra crossing'/><q/></r>")
        assert db.search("zebra", uri="d.xml")
        db.execute("delete node doc('d.xml')//p/@id")
        index = term_index_for(db.store.get("d.xml"))
        assert "zebra" not in index._attr_postings
        assert not db.search("zebra", uri="d.xml")

    def test_replace_element_value_reposts(self):
        db = Database()
        db.register("d.xml", "<r><p>ancient words</p><q>other</q></r>")
        db.search("ancient")
        db.execute("replace value of node doc('d.xml')//p "
                   "with 'modern phrase'")
        root = db.store.get("d.xml")
        assert not db.search("ancient", uri="d.xml")
        assert [h.node.name for h in db.search("modern", uri="d.xml")] \
            == ["p"]
        assert_search_equal(root, ["modern", "phrase"])

    def test_seams_repaired_across_updates(self):
        db = Database()
        db.register("d.xml", "<doc><d>worl<b/>dwide</d><e>keep</e></doc>")
        root = db.store.get("d.xml")
        assert len(contains_matches(root, "worldwide")) == 2  # doc + d
        db.execute("delete node doc('d.xml')//d/text()[1]")
        root = db.store.get("d.xml")
        assert contains_matches(root, "worldwide") \
            == naive_contains_scan(root, "worldwide") == []
        db.execute("insert node text { 'worl' } as first "
                   "into doc('d.xml')//d")
        root = db.store.get("d.xml")
        assert contains_matches(root, "worldwide") \
            == naive_contains_scan(root, "worldwide")
        assert len(contains_matches(root, "worldwide")) == 2


# ---------------------------------------------------------------------------
# Dynamic needles: stable fallback code, analyzer agreement


class TestDynamicNeedleFallback:
    DYNAMIC = ("declare variable $w external; "
               "doc('p.xml')//person[contains(., $w)]/name")

    def test_falls_back_with_stable_code(self):
        db = Database()
        db.register("p.xml", PERSONS_XML)
        explain = db.explain(self.DYNAMIC, w="worldwide")
        assert explain.plan == "interpreter"
        assert explain.fallback_code == "search-dynamic-needle"
        assert db.engine.fallback_stats() == {"search-dynamic-needle": 1}
        # the interpreter still answers it, identically to a literal
        result = db.execute(self.DYNAMIC, w="worldwide")
        literal = db.execute(
            "doc('p.xml')//person[contains(., 'worldwide')]/name")
        assert serialize_sequence(result) == serialize_sequence(literal)

    def test_analyzer_predicts_it(self):
        db = Database()
        db.register("p.xml", PERSONS_XML)
        compiled = db.engine.compile(self.DYNAMIC)
        from repro.analysis import analyze_compiled
        analysis = analyze_compiled(compiled, has_doc_resolver=True,
                                    variables={"w"})
        assert not analysis.liftable
        assert analysis.fallback_code == "search-dynamic-needle"


# ---------------------------------------------------------------------------
# Database.search surface + telemetry


class TestDatabaseSearch:
    def test_multi_document_merge_and_uri(self):
        db = Database()
        db.register("a.xml", "<r><x>alpha beta</x></r>")
        db.register("b.xml", "<r><y>alpha</y><z>beta gamma</z></r>")
        hits = db.search(["alpha"])
        assert [(h.uri, h.node.name) for h in hits] \
            == [("a.xml", "x"), ("b.xml", "y")]
        only_b = db.search(["beta"], uri="b.xml")
        assert [h.uri for h in only_b] == ["b.xml"]
        with pytest.raises(KeyError):
            db.search(["alpha"], uri="missing.xml")

    def test_ranked_and_limit(self):
        db = Database()
        db.register("a.xml", "<r><x>lot</x><y>lot lot</y></r>")
        hits = db.search("lot", ranked=True)
        assert [h.score for h in hits] == sorted(
            (h.score for h in hits), reverse=True)
        assert len(db.search("lot", limit=1)) == 1

    def test_stats_and_explain_carry_search_telemetry(self):
        db = Database()
        db.register("p.xml", PERSONS_XML)
        explain = db.explain(
            "doc('p.xml')//person[contains(., 'worldwide')]")
        assert explain.plan == "lifted"
        assert explain.search_queries == 1
        assert explain.postings_built > 0  # this execution built postings
        assert explain.postings_hits > 0
        assert "search:" in explain.render()
        stats = db.stats()
        assert stats.term_index_builds > 0
        assert stats.postings_built > 0
        assert stats.search_queries > 0
        assert stats.postings_hits > 0


# ---------------------------------------------------------------------------
# Distributed fan-out: one bulk message per site, merged doc order


class TestDistributedSearch:
    def network(self):
        net = SimulatedNetwork()
        p0 = XRPCPeer("p0.example.org", net)
        y = XRPCPeer("y.example.org", net)
        z = XRPCPeer("z.example.org", net)
        y.store.register("a.xml", generate_persons(CONFIG))
        y.store.register(
            "b.xml", "<r><m>rare vintage</m><n>plain text</n></r>")
        z.store.register("c.xml", generate_auctions(CONFIG))
        return p0, y, z

    def test_merges_to_local_search_result(self):
        p0, y, z = self.network()
        result = p0.keyword_search(
            ["rare", "vintage"],
            peers=["y.example.org", "z.example.org"])
        expected = []
        for peer, uris in ((y, ["a.xml", "b.xml"]), (z, ["c.xml"])):
            for uri in uris:
                for hit in naive_search(peer.store.get(uri),
                                        ["rare", "vintage"]):
                    expected.append(
                        (uri, hit.node.name, hit.score,
                         hit.node.string_value()))
        got = [(h.uri, h.node.name, h.score, h.node.string_value())
               for h in result.hits]
        assert got == expected
        assert expected, "distributed fixture unexpectedly empty"

    def test_one_bulk_message_per_site(self):
        p0, y, z = self.network()
        result = p0.keyword_search(
            ["rare", "vintage", "auction", "mint"],
            peers=["y.example.org", "z.example.org"])
        # all terms travel together: exactly one message per remote site
        assert result.messages_sent == 2

    def test_local_peer_served_without_messages(self):
        p0, y, z = self.network()
        p0.store.register("local.xml", "<l><m>rare vintage</m></l>")
        result = p0.keyword_search(
            "rare vintage", peers=["p0.example.org", "y.example.org"])
        assert result.messages_sent == 1
        assert result.hits[0].uri == "local.xml"

    def test_ranked_merge(self):
        p0, y, z = self.network()
        result = p0.keyword_search(
            ["auction"], peers=["y.example.org", "z.example.org"],
            ranked=True)
        scores = [h.score for h in result.hits]
        assert scores == sorted(scores, reverse=True)
        assert scores


# ---------------------------------------------------------------------------
# Property-based equivalence (hypothesis)


_TEXTS = st.text(alphabet="ab -", max_size=5)


@st.composite
def mixed_content_docs(draw):
    """Small documents with adjacent texts split by empty elements —
    the shapes that exercise seams and every needle-token mode."""
    parts = []
    for text in draw(st.lists(_TEXTS, min_size=1, max_size=6)):
        if draw(st.booleans()):
            parts.append(f"<w>{escape_text(text)}</w>")
        else:
            parts.append(escape_text(text))
            if draw(st.booleans()):
                parts.append("<s/>")
    return "<root><l>" + "".join(parts) + "</l><r>ab</r></root>"


class TestPropertyEquivalence:
    @given(doc=mixed_content_docs(),
           needle=st.text(alphabet="ab -", max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_contains_prefilter_equals_oracle(self, doc, needle):
        for stride in (None, 1):
            root = parse_document(doc, stride=stride)
            assert contains_matches(root, needle) \
                == naive_contains_scan(root, needle)

    @given(doc=mixed_content_docs(),
           needle=st.text(alphabet="ab -", max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_contains_scan_equals_oracle(self, doc, needle):
        for stride in (None, 1):
            root = parse_document(doc, stride=stride)
            assert term_index_for(root).contains_scan(needle) \
                == naive_contains_scan(root, needle)

    @given(doc=mixed_content_docs(),
           terms=st.lists(st.text(alphabet="ab", min_size=1, max_size=3),
                          min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_keyword_search_equals_oracle(self, doc, terms):
        root = parse_document(doc)
        assert_search_equal(root, terms)

    @given(texts=st.lists(st.text(alphabet="ab -", min_size=1, max_size=4),
                          min_size=1, max_size=4),
           needle=st.text(alphabet="ab -", min_size=1, max_size=3),
           drop=st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_survives_interleaved_updates(self, texts, needle,
                                                      drop):
        db = Database()
        body = "".join(f"<w>{escape_text(t)}</w>" for t in texts)
        db.register("d.xml", f"<root>{body}</root>")
        db.search(needle)  # build postings before the updates
        db.execute("insert node <w>ab ba</w> as first into "
                   "doc('d.xml')/root")
        db.execute(f"delete node doc('d.xml')//w[{drop + 1}]")
        db.execute("replace value of node doc('d.xml')//w[1] with 'b a'")
        root = db.store.get("d.xml")
        assert contains_matches(root, needle) \
            == naive_contains_scan(root, needle)
        tokens = tokenize(needle)
        if tokens:
            assert_search_equal(root, tokens)


# ---------------------------------------------------------------------------
# Tokenizer spec sanity (the soundness of every prefilter mode)


class TestNeedleSpec:
    def test_modes(self):
        assert needle_token_spec("lot") == [("lot", "substring")]
        assert needle_token_spec(" lot ") == [("lot", "exact")]
        assert needle_token_spec("big lot") \
            == [("big", "suffix"), ("lot", "prefix")]
        assert needle_token_spec("--") == []
        assert needle_token_spec("") == []
