"""The prepare-time static analyzer (:mod:`repro.analysis`).

The analyzer makes promises the runtime must keep, so most of this file
is *agreement* testing: the liftability prediction is checked against
the engine's actual lifted-vs-fallback decision (same stable code), the
updating-ness verdict against the evaluator's pending update list, and
the site profile against the peer's routing — over the XMark READ_SUITE,
a curated corpus of fallback/update/remote shapes, and
hypothesis-generated queries, with the accelerator both on and off.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis import analyze_compiled
from repro.engine import Engine
from repro.workloads.xmark import (
    READ_SUITE,
    XMarkConfig,
    generate_auctions,
    generate_persons,
)
from repro.xml import parse_document
from repro.xquery.context import ExecutionContext
from repro.xquery.evaluator import CompiledQuery

CONFIG = XMarkConfig(persons=10, closed_auctions=40, open_auctions=6)

DOCUMENTS = {
    "persons.xml": parse_document(generate_persons(CONFIG),
                                  uri="persons.xml"),
    "auctions.xml": parse_document(generate_auctions(CONFIG),
                                   uri="auctions.xml"),
    "r.xml": parse_document(
        "<root><sec n='0'><item v='a'>x</item><item v='b'>y</item></sec>"
        "<sec n='1'><item v='c'>z</item></sec></root>", uri="r.xml"),
}


def _context(accelerator=True, variables=None):
    return ExecutionContext(doc_resolver=DOCUMENTS.get,
                            accelerator=accelerator,
                            variables=variables)


def assert_prediction_agrees(source, accelerator=True, variables=None):
    """The core invariant: run *source* through the engine and demand
    the analyzer predicted what actually happened.

    * plan ran lifted  -> the analyzer said liftable;
    * static fallback  -> the analyzer said not liftable, with the
      *same* stable code the compiler raised;
    * dynamic bail     -> the analyzer said liftable but declared the
      bail's code among its ``dynamic_risks`` (the honesty label).
    """
    engine = Engine(plan_cache=False)
    context = _context(accelerator=accelerator, variables=variables)
    _, explain = engine.execute(source, context)
    analysis = explain.analysis
    assert analysis is not None
    if explain.plan == "lifted":
        assert analysis.liftable, (
            f"ran lifted but predicted fallback "
            f"[{analysis.fallback_code}]: {analysis.fallback_reason}\n"
            f"query: {source}")
    elif analysis.liftable:
        assert explain.fallback_code in analysis.dynamic_risks, (
            f"predicted liftable but fell back "
            f"[{explain.fallback_code}] {explain.fallback_reason} "
            f"(declared risks: {analysis.dynamic_risks})\nquery: {source}")
    else:
        assert analysis.fallback_code == explain.fallback_code, (
            f"predicted [{analysis.fallback_code}] but compiler raised "
            f"[{explain.fallback_code}] {explain.fallback_reason}\n"
            f"query: {source}")
        assert analysis.fallback_reason == explain.fallback_reason
    return explain


# ---------------------------------------------------------------------------
# Corpus agreement: READ_SUITE + curated shapes, accelerator on and off


# Shapes chosen to land in every predictor branch: lifted paths and
# FLWORs, each static-fallback code, and dynamic-risk queries that
# succeed (stay lifted) as well as ones that bail mid-plan.
CURATED = [
    # lifted
    "doc('r.xml')//item",
    "doc('r.xml')/root/sec[@n = '1']/item",
    "for $s in doc('r.xml')//sec return $s/item[1]",
    "for $i in doc('r.xml')//item where $i/@v = 'a' return $i",
    # function-not-lifted
    "count(doc('r.xml')//item)",
    "sum((1, 2, 3))",
    # clause-not-lifted
    "for $i in doc('r.xml')//item order by $i/@v return $i",
    # expr-not-lifted
    "<wrap>{ doc('r.xml')//item }</wrap>",
    "if (1 = 1) then doc('r.xml')//item else ()",
    # axis/step shapes that *are* lifted
    "doc('r.xml')//item/ancestor::sec",
    "doc('r.xml')//item[last()]",
    # cardinality risk, runs clean lifted
    "1 + 2",
    "(1 to 5)",
    # positional-runtime risk that actually bails mid-plan (a numeric
    # predicate outside the recognized positional specs)
    "doc('r.xml')//item[1 + 1]",
    # contains predicates: literal needles lift (posting-list
    # prefilter), dynamic needles are search-dynamic-needle, and a
    # non-context haystack is function-not-lifted
    "doc('r.xml')//item[contains(., 'a')]",
    "doc('r.xml')//sec[contains(., 'missing words')]/item",
    "for $i in doc('r.xml')//item[contains(., 'a')] return $i",
    "for $i in doc('r.xml')//item return doc('r.xml')"
    "//sec[contains(., string($i/@v))]",
    "doc('r.xml')//sec[contains(@n, '1')]",
]


class TestCorpusAgreement:
    @pytest.mark.parametrize("name", sorted(READ_SUITE))
    @pytest.mark.parametrize("accelerator", [True, False],
                             ids=["accel", "noaccel"])
    def test_read_suite(self, name, accelerator):
        explain = assert_prediction_agrees(READ_SUITE[name],
                                           accelerator=accelerator)
        # the whole READ_SUITE is inside the lifted core
        assert explain.plan == "lifted"

    @pytest.mark.parametrize("source", CURATED)
    @pytest.mark.parametrize("accelerator", [True, False],
                             ids=["accel", "noaccel"])
    def test_curated_shapes(self, source, accelerator):
        assert_prediction_agrees(source, accelerator=accelerator)

    def test_unbound_external_variable_is_predicted(self):
        # No binding passed: the lifted plan cannot compile $who, and
        # the analyzer knows it from the same (empty) binding set.
        source = ("declare variable $who external; "
                  "doc('r.xml')//item[@v = $who]")
        compiled = CompiledQuery(source)
        analysis = analyze_compiled(compiled, has_doc_resolver=True,
                                    variables=set())
        assert not analysis.liftable
        assert analysis.fallback_code == "unbound-variable"

    def test_bound_external_variable_lifts(self):
        from repro.xdm.atomic import string
        source = ("declare variable $who external; "
                  "doc('r.xml')//item[@v = $who]")
        explain = assert_prediction_agrees(
            source, variables={"who": [string("a")]})
        assert explain.plan == "lifted"


# ---------------------------------------------------------------------------
# Updating-ness agreement: verdict vs the evaluator's pending update list


UPDATING_QUERIES = [
    "insert node <new/> as last into doc('r.xml')/root",
    "delete nodes doc('r.xml')//item[1]",
    "rename node doc('r.xml')/root/sec[1] as 'chapter'",
    "replace value of node doc('r.xml')//item[1] with 'q'",
    "for $i in doc('r.xml')//item return delete nodes $i",
    "fn:put(doc('r.xml'), 'out.xml')",
]

READONLY_QUERIES = [
    "doc('r.xml')//item",
    "count(doc('r.xml')//item)",
    "for $i in doc('r.xml')//item return $i/@v",
]


class TestUpdatingAgreement:
    @pytest.mark.parametrize("source", UPDATING_QUERIES)
    def test_updating_queries_flagged_and_produce_updates(self, source):
        compiled = CompiledQuery(source)
        analysis = analyze_compiled(compiled, has_doc_resolver=True)
        assert analysis.updating
        documents = {
            uri: parse_document(
                "<root><sec n='0'><item v='a'>x</item></sec></root>",
                uri=uri)
            for uri in ("r.xml",)}
        context = ExecutionContext(doc_resolver=documents.get,
                                   apply_updates=False,
                                   put_store=lambda uri, node: None)
        _, pul = compiled.run(context)
        assert pul, f"flagged updating but produced no updates: {source}"

    @pytest.mark.parametrize("source", READONLY_QUERIES)
    def test_readonly_queries_not_flagged(self, source):
        compiled = CompiledQuery(source)
        analysis = analyze_compiled(compiled, has_doc_resolver=True)
        assert not analysis.updating
        context = ExecutionContext(doc_resolver=DOCUMENTS.get,
                                   apply_updates=False)
        _, pul = compiled.run(context)
        assert not pul

    def test_updating_through_local_function_closure(self):
        source = """
        declare function local:zap($d) { delete nodes $d//item };
        local:zap(doc('r.xml'))
        """
        analysis = analyze_compiled(CompiledQuery(source),
                                    has_doc_resolver=True)
        assert analysis.updating
        assert analysis.updating_local


# ---------------------------------------------------------------------------
# Site profile + peer routing


FILM_MODULE = """
module namespace film = "films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor = $actor] };
declare updating function film:logVisit($actor as xs:string)
{ insert node <visit>{$actor}</visit> as last into doc("log.xml")/log };
"""
FILM_LOCATION = "http://x.example.org/film.xq"


def _compile_with_module(source):
    from repro.xquery.modules import ModuleRegistry
    registry = ModuleRegistry()
    registry.register_source(FILM_MODULE, location=FILM_LOCATION)
    return CompiledQuery(source, registry=registry)


class TestSiteProfile:
    def test_literal_destinations_and_count(self):
        source = f"""
        import module namespace f = "films" at "{FILM_LOCATION}";
        ( execute at {{"xrpc://y"}} {{ f:filmsByActor("A") }},
          execute at {{"xrpc://z"}} {{ f:filmsByActor("B") }} )
        """
        profile = analyze_compiled(_compile_with_module(source),
                                   has_dispatch=True).sites
        assert profile.count == 2
        assert profile.destinations == ("xrpc://y", "xrpc://z")
        assert profile.dynamic_destinations == 0
        assert profile.groupable
        assert not profile.updating_remote

    def test_dynamic_destination_counted(self):
        source = f"""
        import module namespace f = "films" at "{FILM_LOCATION}";
        for $dst in ("xrpc://y", "xrpc://z")
        return execute at {{$dst}} {{ f:filmsByActor("A") }}
        """
        profile = analyze_compiled(_compile_with_module(source),
                                   has_dispatch=True).sites
        assert profile.count == 1
        assert profile.dynamic_destinations == 1
        assert not profile.groupable

    def test_updating_remote_decl(self):
        source = f"""
        import module namespace f = "films" at "{FILM_LOCATION}";
        execute at {{"xrpc://y"}} {{ f:logVisit("A") }}
        """
        properties = analyze_compiled(_compile_with_module(source),
                                      has_dispatch=True)
        assert properties.sites.updating_remote
        assert properties.updating

    def test_sites_through_local_function_closure(self):
        # The old remote_call_profile only scanned the top-level body;
        # the analyzer counts sites reached through locally-called
        # functions too.
        source = f"""
        import module namespace f = "films" at "{FILM_LOCATION}";
        declare function local:go($a) {{
            execute at {{"xrpc://y"}} {{ f:filmsByActor($a) }} }};
        ( local:go("A"), local:go("B") )
        """
        profile = analyze_compiled(_compile_with_module(source),
                                   has_dispatch=True).sites
        assert profile.count == 1
        assert profile.destinations == ("xrpc://y",)


class TestPeerRouting:
    """`XRPCPeer.execute_query` routes from the analyzer's site profile
    (not the old top-level-only scan)."""

    def _peers(self):
        from repro.net import SimulatedNetwork
        from repro.rpc import XRPCPeer

        network = SimulatedNetwork()
        origin = XRPCPeer("p0", network)
        server = XRPCPeer("y", network)
        for peer in (origin, server):
            peer.registry.register_source(FILM_MODULE,
                                          location=FILM_LOCATION)
        server.store.register("filmDB.xml", """<films>
            <film><name>The Rock</name><actor>A</actor></film>
            <film><name>Goldfinger</name><actor>B</actor></film>
            </films>""")
        server.store.register("log.xml", "<log/>")
        return origin, server

    def test_updating_remote_routes_to_strict_executor(self):
        origin, server = self._peers()
        result = origin.execute_query(f"""
            import module namespace f = "films" at "{FILM_LOCATION}";
            execute at {{"xrpc://y"}} {{ f:logVisit("A") }}
        """)
        assert result.fallback_reason is not None
        assert "no speculative shipping" in result.fallback_reason
        assert len(server.store.get("log.xml").root_element.children) == 1

    def test_updating_call_inside_local_function_still_caught(self):
        # Regression guard for the closure coverage: the updating remote
        # call hides inside a local function body, which the old
        # top-level profile never saw.
        origin, server = self._peers()
        result = origin.execute_query(f"""
            import module namespace f = "films" at "{FILM_LOCATION}";
            declare function local:log($a) {{
                execute at {{"xrpc://y"}} {{ f:logVisit($a) }} }};
            local:log("A")
        """)
        assert result.fallback_reason is not None
        assert "no speculative shipping" in result.fallback_reason
        assert len(server.store.get("log.xml").root_element.children) == 1

    def test_read_only_remote_results_unchanged(self):
        origin, _ = self._peers()
        result = origin.execute_query(f"""
            import module namespace f = "films" at "{FILM_LOCATION}";
            for $a in ("A", "B")
            return execute at {{"xrpc://y"}} {{ f:filmsByActor($a) }}
        """)
        assert [node.string_value() for node in result.sequence] == [
            "The Rock", "Goldfinger"]
        assert result.messages_sent == 1  # still grouped into one bulk


# ---------------------------------------------------------------------------
# Diagnostics


class TestDiagnostics:
    def _diagnostics(self, source, **kwargs):
        return analyze_compiled(CompiledQuery(source),
                                has_doc_resolver=True, **kwargs).diagnostics

    def test_unbound_variable_has_position(self):
        [diag] = self._diagnostics("1 +\n  $missing")
        assert (diag.severity, diag.code) == ("error", "XPST0008")
        assert (diag.line, diag.column) == (2, 3)
        assert "$missing" in diag.message
        assert diag.render("q.xq") == (
            "q.xq:2:3: error [XPST0008]: variable $missing is not declared")

    def test_unknown_function(self):
        [diag] = self._diagnostics("no-such-fn(1)")
        assert (diag.severity, diag.code) == ("error", "XPST0017")
        assert "no-such-fn#1" in diag.message

    def test_wrong_arity(self):
        [diag] = self._diagnostics("""
        declare function local:f($a) { $a };
        local:f(1, 2)
        """)
        assert (diag.severity, diag.code) == ("error", "XPST0017")
        assert "arity" in diag.message

    def test_undeclared_prefix(self):
        [diag] = self._diagnostics("nope:f(1)")
        assert (diag.severity, diag.code) == ("error", "XPST0081")

    def test_remote_unknown_function_is_warning(self):
        # The peer at the destination must provide it; not an error here.
        diagnostics = analyze_compiled(
            _compile_with_module(f"""
            import module namespace f = "films" at "{FILM_LOCATION}";
            execute at {{"xrpc://y"}} {{ f:somethingNew("A") }}
            """), has_dispatch=True).diagnostics
        [diag] = [d for d in diagnostics if d.code == "XPST0017"]
        assert diag.severity == "warning"

    def test_clean_query_has_no_diagnostics(self):
        assert self._diagnostics("doc('r.xml')//item") == ()

    def test_external_variable_declared_not_a_diagnostic(self):
        # XPST0008 is about *declaration*: a declared-external variable
        # never trips it, bound or not.  Whether a binding will be
        # present at run time is the liftability predictor's concern.
        source = "declare variable $who external; $who"
        assert self._diagnostics(source, variables={"who"}) == ()
        assert self._diagnostics(source, variables=set()) == ()
        unbound = analyze_compiled(CompiledQuery(source),
                                   has_doc_resolver=True, variables=set())
        assert unbound.fallback_code == "unbound-variable"


# ---------------------------------------------------------------------------
# Surfacing: Explain and the prepared-query property


class TestSurfacing:
    def test_explain_carries_analysis(self):
        engine = Engine(plan_cache=False)
        _, explain = engine.execute("doc('r.xml')//item", _context())
        assert explain.analysis is not None
        assert explain.analysis.liftable
        assert "analysis: liftable=yes" in explain.render()

    def test_explain_analysis_on_fallback(self):
        engine = Engine(plan_cache=False)
        _, explain = engine.execute("count(doc('r.xml')//item)",
                                    _context())
        assert explain.plan == "interpreter"
        assert "analysis: liftable=no [function-not-lifted]" \
            in explain.render()

    def test_prepared_query_analysis(self):
        from repro.session import Database
        db = Database()
        db.register("r.xml",
                    "<root><item>x</item></root>")
        prepared = db.prepare("doc('r.xml')//item")
        assert prepared.analysis.liftable
        assert not prepared.analysis.updating

    def test_analysis_memoized_on_compiled_query(self):
        engine = Engine()  # plan cache on
        engine.execute("doc('r.xml')//item", _context())
        compiled, _, cache_hit = engine.compile_with_stats(
            "doc('r.xml')//item")
        assert cache_hit
        first = analyze_compiled(compiled, has_doc_resolver=True,
                                 variables=set())
        second = analyze_compiled(compiled, has_doc_resolver=True,
                                  variables=set())
        assert first is second


# ---------------------------------------------------------------------------
# Property-based agreement: random queries, accelerator on and off


_tags = st.sampled_from(["item", "sec", "root", "nothere"])
_axes = st.sampled_from(["", "ancestor::", "following::",
                         "preceding-sibling::", "self::"])
_predicates = st.sampled_from(["", "[1]", "[last()]", "[@v = 'a']",
                               "[position() >= 2]"])


@st.composite
def random_queries(draw):
    """Small queries spanning lifted paths, FLWORs, fallback functions
    and clauses, and dynamic-risk arithmetic."""
    kind = draw(st.sampled_from(
        ["path", "flwor", "function", "orderby", "arith", "constructor"]))
    steps = "/".join(
        draw(_axes) + draw(_tags) + draw(_predicates)
        for _ in range(draw(st.integers(1, 3))))
    path = f"doc('r.xml')//{steps}"
    if kind == "path":
        return path
    if kind == "flwor":
        predicate = draw(_predicates)
        return f"for $x in {path} return $x{predicate or ''}"
    if kind == "function":
        fn = draw(st.sampled_from(["count", "sum", "string", "not"]))
        return f"{fn}({path})"
    if kind == "orderby":
        return f"for $x in {path} order by $x return $x"
    if kind == "arith":
        left = draw(st.integers(0, 9))
        right = draw(st.integers(1, 9))
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"{left} {op} {right}"
    return f"<out>{{ {path} }}</out>"


def _agrees_or_skips(source, accelerator):
    # Generated queries may raise genuine dynamic/type errors (e.g.
    # fn:string over two items) — correct behavior for *both*
    # pipelines and outside the liftability contract, so those
    # examples are discarded rather than judged.
    from repro.errors import XRPCReproError
    try:
        assert_prediction_agrees(source, accelerator=accelerator)
    except XRPCReproError:
        assume(False)


class TestPropertyBasedAgreement:
    @given(random_queries())
    @settings(max_examples=120, deadline=None)
    def test_prediction_agrees_accelerator_on(self, source):
        _agrees_or_skips(source, accelerator=True)

    @given(random_queries())
    @settings(max_examples=120, deadline=None)
    def test_prediction_agrees_accelerator_off(self, source):
        _agrees_or_skips(source, accelerator=False)

    @given(random_queries())
    @settings(max_examples=60, deadline=None)
    def test_verdict_independent_of_accelerator(self, source):
        compiled = CompiledQuery(source)
        on = analyze_compiled(compiled, has_doc_resolver=True)
        off = analyze_compiled(compiled, has_doc_resolver=True)
        assert on.liftable == off.liftable
        assert on.fallback_code == off.fallback_code
