"""Unit tests for the network substrate: clocks, cost models, simulation."""

import pytest

from repro.errors import TransportError
from repro.net import (
    NetworkCostModel,
    PeerCostModel,
    SimulatedNetwork,
    VirtualClock,
    WallClock,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_set_forward_only(self):
        clock = VirtualClock(start=10.0)
        clock.set(12.0)
        assert clock.now() == 12.0
        with pytest.raises(ValueError):
            clock.set(5.0)

    def test_wall_clock_monotonic(self):
        clock = WallClock()
        first = clock.now()
        clock.advance(100)  # no-op
        assert clock.now() >= first


class TestCostModels:
    def test_transfer_includes_latency_and_bandwidth(self):
        model = NetworkCostModel(latency_seconds=0.001,
                                 bandwidth_bytes_per_second=1e6)
        assert model.transfer_seconds(0) == 0.001
        assert model.transfer_seconds(1_000_000) == pytest.approx(1.001)

    def test_peer_request_cost_compile_toggle(self):
        model = PeerCostModel()
        cold = model.request_cost(1000, calls=1, compiled_cached=False)
        warm = model.request_cost(1000, calls=1, compiled_cached=True)
        assert cold - warm == pytest.approx(model.compile_seconds)

    def test_per_call_cost_scales(self):
        model = PeerCostModel()
        one = model.request_cost(0, calls=1, compiled_cached=True)
        thousand = model.request_cost(0, calls=1000, compiled_cached=True)
        assert thousand - one == pytest.approx(999 * model.per_call_seconds)

    def test_throughput_asymmetry_in_model(self):
        model = PeerCostModel()
        # Shredding (requests) is slower than serialization (responses),
        # matching the paper's 8 vs 14 MB/s.
        assert model.shred_seconds_per_byte > model.serialize_seconds_per_byte


class TestSimulatedNetwork:
    def test_send_charges_both_directions(self):
        network = SimulatedNetwork(NetworkCostModel(
            latency_seconds=0.01, bandwidth_bytes_per_second=1e9))
        network.register_peer("b", lambda payload: payload)
        network.send("b", "x" * 100)
        # Two transfers => two latencies (plus negligible byte time).
        assert network.clock.now() == pytest.approx(0.02, rel=0.01)

    def test_unknown_peer(self):
        network = SimulatedNetwork()
        with pytest.raises(TransportError):
            network.send("ghost", "payload")

    def test_stats_tracking(self):
        network = SimulatedNetwork()
        network.register_peer("b", lambda payload: "ok")
        network.send("b", "12345")
        assert network.messages_sent == 1
        assert network.bytes_sent == 5
        assert network.bytes_received == 2
        assert network.message_log == [("b", 5, 2)]
        network.reset_stats()
        assert network.messages_sent == 0
        assert network.message_log == []

    def test_handler_can_charge_cpu_time(self):
        network = SimulatedNetwork(NetworkCostModel(latency_seconds=0.0))

        def busy_handler(payload: str) -> str:
            network.clock.advance(0.5)
            return "done"

        network.register_peer("b", busy_handler)
        start = network.clock.now()
        network.send("b", "x")
        assert network.clock.now() - start == pytest.approx(0.5, rel=0.01)

    def test_parallel_dispatch_takes_max_not_sum(self):
        network = SimulatedNetwork(NetworkCostModel(latency_seconds=0.0))

        def slow(payload: str) -> str:
            network.clock.advance(1.0)
            return "slow"

        def fast(payload: str) -> str:
            network.clock.advance(0.1)
            return "fast"

        network.register_peer("s", slow)
        network.register_peer("f", fast)
        start = network.clock.now()
        responses = network.send_parallel([("s", "x"), ("f", "y")])
        elapsed = network.clock.now() - start
        assert responses == ["slow", "fast"]
        # Parallel: total = max(1.0, 0.1), not 1.1.
        assert elapsed == pytest.approx(1.0, rel=0.01)

    def test_parallel_empty(self):
        assert SimulatedNetwork().send_parallel([]) == []

    def test_sequential_fallback_is_sum(self):
        network = SimulatedNetwork(NetworkCostModel(latency_seconds=0.0))

        def slow(payload: str) -> str:
            network.clock.advance(1.0)
            return "r"

        network.register_peer("s", slow)
        start = network.clock.now()
        network.send("s", "a")
        network.send("s", "b")
        assert network.clock.now() - start == pytest.approx(2.0, rel=0.01)
