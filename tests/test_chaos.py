"""Chaos suite: seeded fault injection over the distributed workloads.

Three peers (an originator plus two data sites) run the full XMark
READ_SUITE and KEYWORD_SUITE as remote data-shipping queries while
:class:`~repro.net.faults.FaultInjectingTransport` drops, delays,
resets, tears, garbles, and duplicates ~20% of the exchanges.  The
retry/breaker layer must absorb every injected fault: results are
byte-identical to a fault-free run of the same topology, and updating
calls are never applied twice.

Seeds are fixed (deterministic CI legs) unless ``CHAOS_SEED`` is set,
which runs exactly that seed — the randomized CI leg exports a random
one and logs it for replay.
"""

import os

import pytest

from repro.net import SimulatedNetwork
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.retry import BreakerRegistry, RetryPolicy
from repro.rpc import XRPCPeer
from repro.workloads.xmark import (
    KEYWORD_SUITE,
    READ_SUITE,
    XMarkConfig,
    generate_auctions,
    generate_persons,
)
from repro.xml.serializer import serialize_sequence

CONFIG = XMarkConfig(persons=10, closed_auctions=20, open_auctions=5,
                     matches=3)
PERSONS_XML = generate_persons(CONFIG)
AUCTIONS_XML = generate_auctions(CONFIG)
FAULT_RATE = 0.2


def chaos_seeds():
    override = os.environ.get("CHAOS_SEED")
    if override is not None:
        return [int(override)]
    return [0, 1, 2]


def remote(query: str) -> str:
    """Rewrite local doc URIs into remote (data-shipping) fetches."""
    return (query
            .replace("doc('persons.xml')",
                     "doc('xrpc://y.example.org/persons.xml')")
            .replace("doc('auctions.xml')",
                     "doc('xrpc://z.example.org/auctions.xml')"))


def build_site(transport, seed: int = 0):
    """Originator + two data peers on the given transport.

    A generous retry budget keeps a 20% fault rate comfortably inside
    the give-up bound (0.2^8), and a zero-cooldown breaker exercises the
    open/half-open transitions without ever fast-failing a live peer.
    """
    policy = RetryPolicy(max_attempts=8, base_delay=0.01, seed=seed)
    origin = XRPCPeer("p0.example.org", transport, retry_policy=policy,
                      breakers=BreakerRegistry(cooldown=0.0))
    persons_site = XRPCPeer("y.example.org", transport)
    persons_site.store.register("persons.xml", PERSONS_XML)
    auctions_site = XRPCPeer("z.example.org", transport)
    auctions_site.store.register("auctions.xml", AUCTIONS_XML)
    return origin


@pytest.fixture(scope="module")
def baseline():
    """Fault-free reference bytes for every suite query."""
    origin = build_site(SimulatedNetwork())
    return {name: serialize_sequence(origin.execute_query(remote(query))
                                     .sequence)
            for suite in (READ_SUITE, KEYWORD_SUITE)
            for name, query in suite.items()}


@pytest.mark.parametrize("seed", chaos_seeds())
def test_suites_byte_identical_under_faults(baseline, seed):
    transport = FaultInjectingTransport(SimulatedNetwork(),
                                        FaultPlan.chaos(seed, FAULT_RATE))
    origin = build_site(transport, seed=seed)
    for suite in (READ_SUITE, KEYWORD_SUITE):
        for name, query in suite.items():
            result = origin.execute_query(remote(query))
            assert serialize_sequence(result.sequence) == baseline[name], \
                f"seed={seed} query={name} diverged under faults"
    # Non-vacuity: the schedule really injected faults...
    assert sum(transport.injected.values()) > 0, f"seed={seed}"
    # ... and the fault-tolerance layer really absorbed some.
    assert transport.injected.get("delay", 0) >= 0  # delays are benign
    disruptive = sum(count for kind, count in transport.injected.items()
                     if kind != "delay")
    assert disruptive > 0, f"seed={seed} schedule was all-benign"


LOG_MODULE = """
module namespace c = "urn:chaoslog";
declare function c:size() as xs:integer
{ count(doc("log.xml")/log/entry) };
declare updating function c:append()
{ insert node <entry/> into doc("log.xml")/log };
"""

APPEND_QUERY = """
import module namespace c = "urn:chaoslog" at "c.xq";
execute at {"xrpc://u.example.org"} { c:append() }
"""


@pytest.mark.parametrize("seed", chaos_seeds())
def test_updating_calls_never_double_apply(seed):
    transport = FaultInjectingTransport(SimulatedNetwork(),
                                        FaultPlan.chaos(seed, FAULT_RATE))
    policy = RetryPolicy(max_attempts=8, base_delay=0.01, seed=seed)
    origin = XRPCPeer("p0.example.org", transport, retry_policy=policy,
                      breakers=BreakerRegistry(cooldown=0.0))
    origin.registry.register_source(LOG_MODULE, location="c.xq")
    server = XRPCPeer("u.example.org", transport)
    server.registry.register_source(LOG_MODULE, location="c.xq")
    server.store.register("log.xml", "<log/>")

    def applied() -> int:
        return len(server.store.get("log.xml").root_element.children)

    failures = 0
    # 40 attempts: every fixed seed's draw prefix contains faults (seed
    # 0's first 25 uniforms all land above the 20% schedule).
    for attempt in range(40):
        before = applied()
        try:
            origin.execute_query(APPEND_QUERY)
        except Exception:
            # A failed updating call may have applied zero or one time
            # (the reply was lost), but never more.
            failures += 1
            assert applied() - before in (0, 1), \
                f"seed={seed} attempt={attempt}: double-applied on failure"
        else:
            assert applied() - before == 1, \
                f"seed={seed} attempt={attempt}: applied " \
                f"{applied() - before} times on success"
    assert sum(transport.injected.values()) > 0, f"seed={seed}"


def test_fault_injection_is_deterministic():
    def run(seed):
        transport = FaultInjectingTransport(SimulatedNetwork(),
                                            FaultPlan.chaos(seed, FAULT_RATE))
        origin = build_site(transport, seed=seed)
        for name in sorted(READ_SUITE)[:5]:
            origin.execute_query(remote(READ_SUITE[name]))
        return dict(transport.injected)

    assert run(3) == run(3)
    assert run(3) != run(4) or run(3) == {}  # schedules differ by seed
