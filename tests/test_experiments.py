"""Shape tests for the experiment harnesses (reduced scales).

These assert the *qualitative* findings of the paper's evaluation —
who wins, by roughly what factor — not absolute milliseconds.
"""

import pytest

from repro.experiments import (
    Table2Experiment,
    Table3Experiment,
    Table4Experiment,
    ThroughputExperiment,
)
from repro.workloads.xmark import XMarkConfig


class TestTable2Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        return Table2Experiment(iterations=(1, 200)).run()

    def _cell(self, rows, mechanism, cache, x):
        for row in rows:
            if (row.mechanism, row.function_cache, row.iterations) == \
                    (mechanism, cache, x):
                return row.milliseconds
        raise KeyError

    def test_single_call_bulk_overhead_is_small(self, rows):
        one = self._cell(rows, "one-at-a-time", False, 1)
        bulk = self._cell(rows, "bulk", False, 1)
        # Paper: 133 vs 130 — near-identical at $x=1.
        assert abs(one - bulk) / one < 0.10

    def test_one_at_a_time_scales_linearly(self, rows):
        single = self._cell(rows, "one-at-a-time", True, 1)
        many = self._cell(rows, "one-at-a-time", True, 200)
        assert many > 100 * single

    def test_bulk_amortizes_latency(self, rows):
        single = self._cell(rows, "bulk", True, 1)
        many = self._cell(rows, "bulk", True, 200)
        # Paper: 2.7 -> 4 msec for 1000x the calls.
        assert many < 20 * single

    def test_function_cache_removes_compile_cost(self, rows):
        cold = self._cell(rows, "bulk", False, 1)
        warm = self._cell(rows, "bulk", True, 1)
        # Paper: 130 -> 2.7 (the 130ms module translation disappears).
        assert cold - warm > 100

    def test_bulk_beats_one_at_a_time_at_scale(self, rows):
        bulk = self._cell(rows, "bulk", True, 200)
        one = self._cell(rows, "one-at-a-time", True, 200)
        assert one / bulk > 20

    def test_render_contains_grid(self, rows):
        text = Table2Experiment.render(rows)
        assert "one-at-a-time" in text
        assert "bulk" in text


class TestTable3Shape:
    @pytest.fixture(scope="class")
    def experiment(self):
        return Table3Experiment(calls=(1, 200),
                                xmark=XMarkConfig(persons=400))

    @pytest.fixture(scope="class")
    def rows(self, experiment):
        return experiment.run()

    def _row(self, rows, function, calls):
        for row in rows:
            if (row.function, row.calls) == (function, calls):
                return row
        raise KeyError

    def test_compile_constant_in_calls(self, rows):
        single = self._row(rows, "echoVoid", 1)
        many = self._row(rows, "echoVoid", 200)
        # Compile is per-request, independent of the number of calls.
        assert many.compile_ms < single.compile_ms * 5 + 5.0

    def test_echo_void_total_far_sublinear(self, rows):
        single = self._row(rows, "echoVoid", 1)
        many = self._row(rows, "echoVoid", 200)
        assert many.total_ms < 100 * single.total_ms

    def test_getperson_exec_becomes_join(self, rows):
        single = self._row(rows, "getPerson", 1)
        many = self._row(rows, "getPerson", 200)
        # Paper: exec grows ~3x for 1000 calls, far below linear; allow
        # generous slack for interpreter overhead but require strongly
        # sublinear growth (the hash-index join effect).
        assert many.exec_ms < 60 * max(single.exec_ms, 0.1)

    def test_treebuild_grows_with_request_size(self, rows):
        single = self._row(rows, "echoVoid", 1)
        many = self._row(rows, "echoVoid", 200)
        assert many.treebuild_ms > single.treebuild_ms

    def test_results_counted(self, experiment):
        row = experiment.measure("getPerson", 3)
        assert row.calls == 3


class TestTable4Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        # Modeled mode: strategies really execute (results and volumes
        # verified) and times derive deterministically from the measured
        # volumes + the paper-calibrated cost constants, so the ordering
        # assertions below cannot flake on a noisy host.
        config = XMarkConfig(persons=40, closed_auctions=1500, matches=6,
                             annotation_words=15)
        return Table4Experiment(xmark=config, mode="modeled").run()

    def _by_name(self, rows):
        return {row.strategy: row for row in rows}

    def test_all_strategies_agree_on_results(self, rows):
        assert all(row.results == 6 for row in rows)

    def test_semijoin_is_fastest(self, rows):
        table = self._by_name(rows)
        semijoin = table["distributed semi-join"].total_ms
        assert all(semijoin <= row.total_ms for row in rows), \
            [(row.strategy, round(row.total_ms, 1)) for row in rows]

    def test_relocation_is_slowest(self, rows):
        table = self._by_name(rows)
        relocation = table["execution relocation"].total_ms
        assert all(relocation >= row.total_ms for row in rows)

    def test_relocation_relieves_local_peer(self, rows):
        table = self._by_name(rows)
        relocation = table["execution relocation"]
        data_shipping = table["data shipping"]
        # Paper: MonetDB time 69ms under relocation vs 16.5s data shipping.
        assert relocation.local_ms < data_shipping.local_ms / 3

    def test_pushdown_ships_less_than_data_shipping(self, rows):
        table = self._by_name(rows)
        assert table["predicate push-down"].bytes_shipped < \
            table["data shipping"].bytes_shipped

    def test_semijoin_ships_least(self, rows):
        table = self._by_name(rows)
        semijoin = table["distributed semi-join"].bytes_shipped
        assert all(semijoin <= row.bytes_shipped for row in rows)

    def test_semijoin_uses_single_bulk_message(self, rows):
        table = self._by_name(rows)
        # 60 probes but bulk RPC ships them in one message (plus none
        # extra for results).
        assert table["distributed semi-join"].messages == 1


class TestThroughputShape:
    def test_response_path_faster_than_request_path(self):
        rows = ThroughputExperiment(rows_per_payload=800).run()
        request = next(r for r in rows if r.direction == "request")
        response = next(r for r in rows if r.direction == "response")
        # Paper: 8 MB/s requests vs 14 MB/s responses (shredding is the
        # bottleneck on the request path).
        assert response.mb_per_second > request.mb_per_second
