"""Tests for the relational algebra of Table 1."""

import pytest

from repro.algebra import Table
from repro.xdm.atomic import integer, string


class TestBasicOps:
    def test_literal_and_len(self):
        table = Table.literal(("a", "b"), [(1, "x"), (2, "y")])
        assert len(table) == 2
        assert table.columns == ("a", "b")

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            Table(("a", "b"), [(1,)])

    def test_select_boolean_column(self):
        table = Table(("a", "keep"), [(1, True), (2, False), (3, True)])
        assert table.select("keep").column_values("a") == [1, 3]

    def test_select_eq(self):
        table = Table(("a",), [(1,), (2,), (1,)])
        assert len(table.select_eq("a", 1)) == 2

    def test_select_eq_atomic_values(self):
        table = Table(("item",), [(string("x"),), (string("y"),)])
        assert len(table.select_eq("item", string("x"))) == 1

    def test_project_and_rename(self):
        table = Table(("a", "b"), [(1, 2)])
        projected = table.project("b", "c:a")
        assert projected.columns == ("b", "c")
        assert projected.rows == [(2, 1)]

    def test_project_no_dedup(self):
        table = Table(("a", "b"), [(1, 1), (1, 2)])
        assert len(table.project("a")) == 2

    def test_distinct(self):
        table = Table(("a",), [(1,), (2,), (1,)])
        assert table.distinct().column_values("a") == [1, 2]

    def test_distinct_atomic_items(self):
        table = Table(("item",), [(integer(1),), (integer(1),), (integer(2),)])
        assert len(table.distinct()) == 2

    def test_union_disjoint(self):
        left = Table(("a",), [(1,)])
        right = Table(("a",), [(2,)])
        assert left.union(right).column_values("a") == [1, 2]

    def test_union_schema_mismatch(self):
        with pytest.raises(ValueError):
            Table(("a",)).union(Table(("b",)))

    def test_equi_join(self):
        left = Table(("k", "l"), [(1, "a"), (2, "b")])
        right = Table(("k2", "r"), [(1, "x"), (1, "y"), (3, "z")])
        joined = left.join(right, "k", "k2")
        assert joined.columns == ("k", "l", "r")
        assert sorted(joined.rows) == [(1, "a", "x"), (1, "a", "y")]

    def test_join_clashing_column_names(self):
        left = Table(("k", "v"), [(1, "a")])
        right = Table(("k2", "v"), [(1, "b")])
        joined = left.join(right, "k", "k2")
        assert joined.columns == ("k", "v", "v'")

    def test_attach_and_fun(self):
        table = Table(("a",), [(2,), (3,)])
        computed = table.attach("c", 10).fun("sum", lambda a, c: a + c, "a", "c")
        assert computed.column_values("sum") == [12, 13]

    def test_sort(self):
        table = Table(("a", "b"), [(2, 1), (1, 2), (1, 1)])
        assert table.sort("a", "b").rows == [(1, 1), (1, 2), (2, 1)]

    def test_drop(self):
        table = Table(("a", "b"), [(1, 2)])
        assert table.drop("a").columns == ("b",)


class TestRownum:
    def test_global_numbering(self):
        table = Table(("a",), [(30,), (10,), (20,)])
        numbered = table.rownum("n", order_by=("a",))
        # Numbers follow the a-order but rows keep their position.
        assert numbered.rows == [(30, 3), (10, 1), (20, 2)]

    def test_partitioned_numbering(self):
        # The paper's ρ with grouping column: numbers ascend from 1 in
        # each partition.
        table = Table(("iter", "pos"),
                      [(1, 10), (1, 20), (2, 10), (2, 20), (2, 30)])
        numbered = table.rownum("n", order_by=("pos",), partition_by="iter")
        assert numbered.column_values("n") == [1, 2, 1, 2, 3]

    def test_loop_lifting_q5_tables(self):
        """Section 3.1's worked example: the $x/$y/loop tables of Q5."""
        loop_s2 = Table(("iter",), [(1,), (2,), (3,), (4,)])
        x = Table(("iter", "pos", "item"),
                  [(1, 1, 10), (2, 1, 10), (3, 1, 20), (4, 1, 20)])
        y = Table(("iter", "pos", "item"),
                  [(1, 1, 100), (2, 1, 200), (3, 1, 100), (4, 1, 200)])
        # z := ($x, $y): union + renumber per iteration.
        z = x.attach("ord", 0).union(y.attach("ord", 1)) \
             .rownum("newpos", order_by=("ord", "pos"), partition_by="iter") \
             .project("iter", "pos:newpos", "item").sort("iter", "pos")
        assert z.rows == [
            (1, 1, 10), (1, 2, 100),
            (2, 1, 10), (2, 2, 200),
            (3, 1, 20), (3, 2, 100),
            (4, 1, 20), (4, 2, 200),
        ]
