"""Gapped pre-plane + incremental StructuralIndex maintenance.

The update path must be O(change): a small XQUF splice mints order keys
inside the serial gap between its document-order neighbours (no restamp
of untouched nodes), deletes free their serials without touching any
other key, value-only updates skip restamping entirely, and the tree's
StructuralIndex is patched in place — same index object across the PUL
— instead of stale-marked and rebuilt.  When a gap is exhausted the
encoder re-spreads the nearest enclosing region, and only in the worst
case restamps the whole tree.  Every path must leave the index
byte-identical to a from-scratch rebuild.
"""

import pytest

from repro.session import Database
from repro.xdm import KEY_STRIDE, NodeFactory
from repro.xdm.structural import (
    ENCODING_STATS,
    StructuralIndex,
    structural_index,
)
from repro.xml import parse_document
from repro.xml.serializer import serialize_sequence
from repro.xquery.evaluator import evaluate_query

SITE = """
<site>
  <people>
    <person id="p0"><name>Ada</name><city>London</city></person>
    <person id="p1"><name>Grace</name><city>Arlington</city></person>
    <person id="p2"><name>Edsger</name><city>Rotterdam</city></person>
  </people>
  <auctions>
    <auction><buyer ref="p0"/><price>12</price></auction>
    <auction><buyer ref="p1"/><price>99</price></auction>
  </auctions>
</site>
"""


def _store(stride=None):
    doc = parse_document(SITE, uri="s.xml", stride=stride)
    return doc, {"s.xml": doc}.get


def _update(resolver, query, **kwargs):
    return evaluate_query(query, doc_resolver=resolver, **kwargs)


def assert_index_matches_rebuild(root):
    """The patched index must equal a from-scratch rebuild, column by
    column (the test then leaves the fresh index installed — it is
    equally consistent)."""
    patched = root._sidx
    assert patched is not None and not patched.stale
    patched_names = {
        name: list(patched.name_pres(name))
        for name in {n.local_name for n in patched.nodes
                     if hasattr(n, "local_name") and n.kind == "element"}}
    # pre_of is a self-healing cache: validate through rank_of, which
    # must agree with a from-scratch build for every row.
    ranks = [patched.rank_of(node) for node in patched.nodes]
    assert ranks == list(range(len(patched.nodes)))
    columns = (list(patched.nodes), list(patched.sizes),
               list(patched.levels))
    fresh = StructuralIndex(root, generation=0)
    assert columns[0] == fresh.nodes
    assert columns[1] == list(fresh.sizes)
    assert columns[2] == list(fresh.levels)
    for name, pres in patched_names.items():
        assert pres == fresh.name_pres(name), name


def assert_keys_monotone(root):
    keys = [root.order_key]
    for node in root.descendants():
        keys.append(node.order_key)
        previous = node.order_key
        for attribute in node.attributes:
            assert attribute.order_key > previous
            previous = attribute.order_key
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)


def assert_windows_cover_subtrees(root):
    """Serial-unit invariant: pre < x <= pre + size exactly selects the
    (attribute-inclusive) subtree — gaps and freed serials included."""
    everything = [root] + list(root.descendants())
    with_attrs = []
    for node in everything:
        with_attrs.append(node)
        with_attrs.extend(node.attributes)
    for node in everything:
        low = node.order_key[1]
        high = low + node.size
        inside = {id(n) for n in with_attrs
                  if low < n.order_key[1] <= high}
        expected = {id(n) for n in node.descendants()}
        for descendant in [node] + list(node.descendants()):
            expected.update(id(a) for a in descendant.attributes)
        expected.discard(id(node))
        assert inside == expected, node


class TestGapMinting:
    def test_single_insert_restamps_nothing_else(self):
        doc, resolver = _store()
        untouched = {id(n): n.order_key
                     for n in doc.descendants(include_self=True)}
        _update(resolver,
                "insert node <person id='p3'><name>Alan</name></person> "
                "after doc('s.xml')//person[1]")
        for node in doc.descendants(include_self=True):
            if id(node) in untouched:
                assert node.order_key == untouched[id(node)]
        assert_keys_monotone(doc)
        assert_windows_cover_subtrees(doc)

    def test_inserted_keys_fall_between_neighbours(self):
        doc, resolver = _store()
        _update(resolver,
                "insert node <person id='pX'/> "
                "before doc('s.xml')//person[2]")
        people = doc.root_element.find("people").child_elements()
        assert [p.get_attribute("id").value for p in people] == \
            ["p0", "pX", "p1", "p2"]
        keys = [p.order_key for p in people]
        assert keys == sorted(keys)
        assert keys[1][0] == doc.order_key[0]  # same doc id: gap minted

    def test_insert_at_document_end_extends_ancestor_sizes(self):
        doc, resolver = _store()
        _update(resolver,
                "insert node <auction><price>1</price></auction> "
                "as last into doc('s.xml')/site/auctions")
        assert_keys_monotone(doc)
        assert_windows_cover_subtrees(doc)

    def test_multi_node_insert_spreads_inside_gap(self):
        doc, resolver = _store()
        _update(resolver,
                "insert nodes (<a/>, <b/>, <c/>) "
                "into doc('s.xml')//person[1]")
        assert_keys_monotone(doc)
        assert_windows_cover_subtrees(doc)

    def test_attribute_insert_keeps_attribute_order_rule(self):
        doc, resolver = _store()
        _update(resolver,
                "insert node attribute age { '36' } "
                "into doc('s.xml')//person[1]")
        # Attributes sort after their element, before its children —
        # //@* pools attributes across elements through document order.
        result = evaluate_query("doc('s.xml')//@*", doc_resolver=resolver)
        assert [a.value for a in result] == \
            ["p0", "36", "p1", "p2", "p0", "p1"]
        assert_keys_monotone(doc)

    def test_delete_needs_no_key_work(self):
        doc, resolver = _store()
        keys_before = {id(n): n.order_key
                       for n in doc.descendants(include_self=True)}
        _update(resolver, "delete node doc('s.xml')//person[2]")
        for node in doc.descendants(include_self=True):
            assert node.order_key == keys_before[id(node)]
        assert_keys_monotone(doc)
        assert_windows_cover_subtrees(doc)

    def test_counters_stay_on_fast_path(self):
        doc, resolver = _store()
        before = ENCODING_STATS.snapshot()
        _update(resolver,
                "insert node <x/> into doc('s.xml')//person[1]")
        _update(resolver, "delete node doc('s.xml')//auction[1]")
        after = ENCODING_STATS.snapshot()
        assert after["reencodes_full"] == before["reencodes_full"]
        assert after["reencodes_subtree"] > before["reencodes_subtree"]


class TestValueOnlyUpdates:
    def test_replace_attribute_value_skips_restamp(self):
        doc, resolver = _store()
        structural_index(doc)  # live index
        keys_before = [n.order_key
                       for n in doc.descendants(include_self=True)]
        before = ENCODING_STATS.snapshot()
        _update(resolver,
                "replace value of node doc('s.xml')//person[1]/@id "
                "with 'p0b'")
        after = ENCODING_STATS.snapshot()
        assert [n.order_key for n in doc.descendants(include_self=True)] \
            == keys_before
        assert after["reencodes_full"] == before["reencodes_full"]
        assert after["reencodes_subtree"] == before["reencodes_subtree"]
        assert after["index_patches"] > before["index_patches"]
        # and the index survived in place
        assert doc._sidx is not None and not doc._sidx.stale

    def test_rename_skips_restamp_and_patches_partition(self):
        doc, resolver = _store()
        index = structural_index(doc)
        index.name_pres("person")  # force the partition build
        _update(resolver,
                "rename node doc('s.xml')//person[2] as 'retired'")
        assert doc._sidx is index and not index.stale
        assert len(index.name_pres("person")) == 2
        assert len(index.name_pres("retired")) == 1
        assert_index_matches_rebuild(doc)

    def test_value_index_eviction_reflects_new_values(self):
        doc, resolver = _store()
        probe = "doc('s.xml')//person[@id = 'p1']/name"
        assert serialize_sequence(
            evaluate_query(probe, doc_resolver=resolver)) == \
            "<name>Grace</name>"
        _update(resolver,
                "replace value of node doc('s.xml')//person[2]/@id "
                "with 'p1b'")
        assert evaluate_query(probe, doc_resolver=resolver) == []
        assert serialize_sequence(evaluate_query(
            "doc('s.xml')//person[@id = 'p1b']/name",
            doc_resolver=resolver)) == "<name>Grace</name>"

    def test_unrelated_value_indexes_survive_patches(self):
        doc, resolver = _store()
        # Build two value indexes under disjoint anchors.
        evaluate_query("doc('s.xml')/site/people/person[@id = 'p0']",
                       doc_resolver=resolver)
        evaluate_query("doc('s.xml')/site/auctions/auction[price = '12']",
                       doc_resolver=resolver)
        index = doc._sidx
        assert index is not None and len(index.value_indexes) == 2
        # A value change inside people must evict only the people probe.
        _update(resolver,
                "replace value of node doc('s.xml')//person[1]/@id "
                "with 'p0b'")
        assert doc._sidx is index
        remaining = list(index.value_indexes)
        assert len(remaining) == 1
        assert remaining[0][3] == "auction"


class TestIndexPatching:
    @pytest.mark.parametrize("update", [
        "insert node <person id='pN'><name>New</name></person> "
        "as first into doc('s.xml')/site/people",
        "insert node <x><y/></x> before doc('s.xml')//auction[2]",
        "insert nodes (<a/>, <b/>) after doc('s.xml')//person[3]",
        "delete node doc('s.xml')//person[1]",
        "delete nodes doc('s.xml')//auction",
        "replace node doc('s.xml')//person[2] with <gone/>",
        "replace value of node doc('s.xml')//person[1]/name with 'Augusta'",
        "replace node doc('s.xml')//auction[1]/buyer/@ref "
        "with attribute ref { 'p9' }",
        "rename node doc('s.xml')//person[1]/city as 'town'",
        "insert node attribute vip { 'yes' } into doc('s.xml')//person[3]",
        "delete node doc('s.xml')//buyer[2]/@ref",
    ])
    def test_patched_index_equals_rebuild(self, update):
        doc, resolver = _store()
        index = structural_index(doc)
        index.name_pres("person")  # force partitions so they get patched
        _update(resolver, update)
        assert doc._sidx is index, "index must be patched, not replaced"
        assert not index.stale
        assert_index_matches_rebuild(doc)
        assert_keys_monotone(doc)
        assert_windows_cover_subtrees(doc)

    def test_index_survives_a_whole_pul(self):
        doc, resolver = _store()
        index = structural_index(doc)
        _update(resolver,
                "for $p in doc('s.xml')//person "
                "return (insert node <seen/> into $p, "
                "rename node $p/name as 'fullname')")
        assert doc._sidx is index and not index.stale
        assert_index_matches_rebuild(doc)

    def test_results_identical_after_patch_vs_rebuild(self):
        queries = [
            "doc('s.xml')//person/name",
            "doc('s.xml')//auction/descendant-or-self::node()",
            "count(doc('s.xml')//*)",
            "doc('s.xml')//name/following::price",
            "doc('s.xml')//price/preceding::name",
            "doc('s.xml')//buyer/ancestor::*",
            "doc('s.xml')//@*",
        ]
        update = ("insert node <person id='p9'><name>Barbara</name>"
                  "</person> before doc('s.xml')//person[2]")
        outputs = []
        for prime in (True, False):
            doc, resolver = _store()
            if prime:  # live index gets patched
                structural_index(doc)
            _update(resolver, update)
            outputs.append([serialize_sequence(
                evaluate_query(q, doc_resolver=resolver)) for q in queries])
        assert outputs[0] == outputs[1]


class TestGapExhaustion:
    def test_dense_document_respreads_or_reencodes(self):
        doc, resolver = _store(stride=1)  # no gaps anywhere
        before = ENCODING_STATS.snapshot()
        _update(resolver,
                "insert node <person id='pX'/> "
                "before doc('s.xml')//person[2]")
        after = ENCODING_STATS.snapshot()
        assert (after["gap_respreads"] > before["gap_respreads"]
                or after["reencodes_full"] > before["reencodes_full"])
        assert_keys_monotone(doc)
        assert_windows_cover_subtrees(doc)

    def test_exhausted_gap_recovers_and_stays_queryable(self):
        doc, resolver = _store()
        # Hammer one gap far beyond its stride capacity.
        for index in range(2 * KEY_STRIDE):
            _update(resolver,
                    f"insert node <extra n='{index}'/> "
                    "after doc('s.xml')//person[1]")
        assert_keys_monotone(doc)
        assert_windows_cover_subtrees(doc)
        result = evaluate_query("count(doc('s.xml')//extra)",
                                doc_resolver=resolver)
        assert result[0].value == 2 * KEY_STRIDE
        if doc._sidx is not None and not doc._sidx.stale:
            assert_index_matches_rebuild(doc)

    def test_full_fallback_restores_gaps(self):
        doc, resolver = _store(stride=1)
        _update(resolver,
                "insert node <person id='pX'/> "
                "before doc('s.xml')//person[2]")
        # After recovery, the next small insert is O(change) again.
        before = ENCODING_STATS.snapshot()
        _update(resolver,
                "insert node <person id='pY'/> "
                "before doc('s.xml')//person[2]")
        after = ENCODING_STATS.snapshot()
        assert after["reencodes_full"] == before["reencodes_full"]
        assert after["reencodes_subtree"] > before["reencodes_subtree"]


class TestDetachedRekey:
    def test_deleted_node_cannot_collide_with_later_mints(self):
        # A delete frees its serials into the gap plane; a later insert
        # may mint them again.  The detached node must have been rekeyed
        # under a fresh doc id, or a held reference would compare as the
        # same document position as a distinct live node.
        doc, resolver = _store()
        [detached] = evaluate_query("doc('s.xml')//person[2]",
                                    doc_resolver=resolver)
        _update(resolver, "delete node doc('s.xml')//person[2]")
        for index in range(2 * KEY_STRIDE):
            _update(resolver,
                    f"insert node <filler n='{index}'/> "
                    "after doc('s.xml')//person[1]")
        live_keys = {n.order_key for n in doc.descendants(include_self=True)}
        detached_keys = {n.order_key
                         for n in detached.descendants(include_self=True)}
        assert not live_keys & detached_keys
        assert detached.order_key[0] != doc.order_key[0]

    def test_replaced_and_replace_value_children_are_rekeyed(self):
        doc, resolver = _store()
        [old_person] = evaluate_query("doc('s.xml')//person[1]",
                                      doc_resolver=resolver)
        [old_name_text] = evaluate_query(
            "doc('s.xml')//person[2]/name/text()", doc_resolver=resolver)
        _update(resolver,
                "replace value of node doc('s.xml')//person[2]/name "
                "with 'Grace M. Hopper'")
        _update(resolver,
                "replace node doc('s.xml')//person[1] with <member/>")
        live_doc_ids = {n.order_key[0]
                        for n in doc.descendants(include_self=True)}
        assert old_person.order_key[0] not in live_doc_ids
        assert old_name_text.order_key[0] not in live_doc_ids


class TestHandAssembledFallback:
    def test_cross_factory_boundary_falls_back_to_full_reencode(self):
        # Hand-assembled tree out of two factories: the splice point's
        # neighbour keys carry different doc ids, so no gap can be
        # minted between them — the encoder must take the full-reencode
        # path (which also unifies the tree under one doc id).
        root = NodeFactory().element("root")
        a = NodeFactory().element("a")
        b = NodeFactory().element("b")
        root.append(a)
        root.append(b)
        before = ENCODING_STATS.snapshot()
        evaluate_query("insert node <x/> before $b",
                       variables={"b": [b]})
        after = ENCODING_STATS.snapshot()
        assert after["reencodes_full"] > before["reencodes_full"]
        assert_keys_monotone(root)
        assert len({n.order_key[0]
                    for n in root.descendants(include_self=True)}) == 1


class TestEquivalenceGappedVsDense:
    QUERIES = [
        "doc('s.xml')//person/name",
        "doc('s.xml')//@*",
        "count(doc('s.xml')//node())",
        "doc('s.xml')//name/..",
        "doc('s.xml')//price/preceding::name",
    ]
    UPDATES = [
        "insert node <person id='pA'><name>Niklaus</name></person> "
        "as first into doc('s.xml')/site/people",
        "delete node doc('s.xml')//auction[1]",
        "rename node doc('s.xml')//person[1] as 'member'",
        "replace value of node doc('s.xml')//person[2]/name "
        "with 'G. Hopper'",
        "insert node attribute checked { 'y' } into doc('s.xml')//buyer",
    ]

    def test_byte_identical_across_encodings_and_modes(self):
        outputs = []
        for stride, incremental, accelerator in (
                (None, True, True),    # gapped, O(change), accelerated
                (None, True, False),   # gapped over the naive walkers
                (1, False, True),      # dense full-restamp baseline
                (1, False, False)):
            doc, resolver = _store(stride=stride)
            run = []
            for update in self.UPDATES:
                evaluate_query(update, doc_resolver=resolver,
                               accelerator=accelerator,
                               incremental_updates=incremental)
                run.extend(serialize_sequence(
                    evaluate_query(query, doc_resolver=resolver,
                                   accelerator=accelerator))
                    for query in self.QUERIES)
            outputs.append(run)
        assert outputs[0] == outputs[1] == outputs[2] == outputs[3]


class TestTelemetry:
    def test_explain_carries_update_counters(self):
        db = Database()
        db.register("s.xml", SITE)
        explain = db.explain(
            "insert node <x/> into doc('s.xml')/site/people")
        assert explain.reencodes_subtree >= 1
        assert explain.reencodes_full == 0
        assert explain.index_patches >= 0
        assert "updates:" in explain.render()

    def test_read_only_explain_has_no_update_counters(self):
        db = Database()
        db.register("s.xml", SITE)
        explain = db.explain("doc('s.xml')//person/name")
        assert explain.reencodes_full == 0
        assert explain.reencodes_subtree == 0
        assert "updates:" not in explain.render()

    def test_explain_deltas_are_thread_attributed(self):
        # Counter bumps on another thread must not leak into this
        # thread's per-execution deltas (concurrent executions are
        # supported; Explain deltas are taken per executing thread).
        import threading

        before = ENCODING_STATS.snapshot_local()
        worker = threading.Thread(
            target=ENCODING_STATS.bump, args=("reencodes_full", 5))
        worker.start()
        worker.join()
        after = ENCODING_STATS.snapshot_local()
        assert after["reencodes_full"] == before["reencodes_full"]
        assert ENCODING_STATS.snapshot()["reencodes_full"] >= 5

    def test_peer_query_result_carries_update_counters(self):
        from repro.net import SimulatedNetwork
        from repro.rpc import XRPCPeer

        peer = XRPCPeer("p0", SimulatedNetwork())
        peer.store.register("s.xml", SITE)
        peer.execute_query("doc('s.xml')//person")  # build the index
        result = peer.execute_query(
            "insert node <x/> into doc('s.xml')/site/people")
        explain = result.explain()
        assert result.reencodes_subtree >= 1
        assert explain.reencodes_subtree >= 1
        assert explain.reencodes_full == 0
        assert "updates:" in explain.render()

    def test_database_stats_totals(self):
        db = Database()
        db.register("s.xml", SITE)
        db.execute("doc('s.xml')//person")  # build the index
        before = db.stats()
        db.execute("insert node <x/> into doc('s.xml')/site/people")
        after = db.stats()
        assert after.reencodes_subtree > before.reencodes_subtree
        assert after.index_patches > before.index_patches
        assert after.reencodes_full == before.reencodes_full
