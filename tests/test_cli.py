"""Tests for the command-line XQuery runner."""

import pytest

from repro.cli import main


@pytest.fixture
def films_file(tmp_path):
    path = tmp_path / "films.xml"
    path.write_text("""<films>
    <film><name>The Rock</name><actor>Sean Connery</actor></film>
    <film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
    </films>""")
    return path


class TestCLI:
    def test_inline_expression(self, capsys):
        assert main(["-e", "1 + 1"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_query_file(self, tmp_path, capsys):
        query = tmp_path / "q.xq"
        query.write_text("for $i in (1 to 3) return $i * 10")
        assert main([str(query)]) == 0
        assert capsys.readouterr().out.strip() == "10 20 30"

    def test_doc_mount(self, films_file, capsys):
        assert main([
            "-e", "doc('filmDB.xml')//name/text()",
            "--doc", f"filmDB.xml={films_file}",
        ]) == 0
        assert capsys.readouterr().out.strip() == "The RockGreen Card"

    def test_doc_mount_bare_path_uses_filename(self, films_file, capsys):
        assert main([
            "-e", "count(doc('films.xml')//film)",
            "--doc", str(films_file),
        ]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_module_registration(self, tmp_path, films_file, capsys):
        module = tmp_path / "film.xq"
        module.write_text("""
        module namespace film = "films";
        declare function film:byActor($a as xs:string) as node()*
        { doc("filmDB.xml")//name[../actor = $a] };
        """)
        assert main([
            "-e", ('import module namespace f="films" at "film.xq"; '
                   'f:byActor("Sean Connery")'),
            "--module", f"film.xq={module}",
            "--doc", f"filmDB.xml={films_file}",
        ]) == 0
        assert "<name>The Rock</name>" in capsys.readouterr().out

    def test_external_variable(self, capsys):
        assert main(["-e", "declare variable $who external; concat('hi ', $who)",
                     "--var", "who=world"]) == 0
        assert capsys.readouterr().out.strip() == "hi world"

    def test_update_and_save(self, tmp_path, films_file, capsys):
        out_path = tmp_path / "updated.xml"
        assert main([
            "-e", "insert node <film><name>New</name></film> "
                  "into doc('filmDB.xml')/films",
            "--doc", f"filmDB.xml={films_file}",
            "--save", f"filmDB.xml={out_path}",
        ]) == 0
        assert "<name>New</name>" in out_path.read_text()

    def test_error_exit_code(self, capsys):
        assert main(["-e", "1 +"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit):
            main([])
        query = tmp_path / "q.xq"
        query.write_text("1")
        with pytest.raises(SystemExit):
            main([str(query), "-e", "2"])

    def test_indent_output(self, capsys):
        assert main(["-e", "<a><b>1</b></a>", "--indent"]) == 0
        out = capsys.readouterr().out
        assert "  <b>1</b>" in out


class TestExplainAndPlanFlags:
    def test_explain_reports_lifted_plan(self, films_file, capsys):
        assert main([
            "-e", "doc('filmDB.xml')//name",
            "--doc", f"filmDB.xml={films_file}",
            "--explain",
        ]) == 0
        captured = capsys.readouterr()
        assert "plan: lifted" in captured.err
        assert "compile:" in captured.err
        assert "execute:" in captured.err
        assert "<name>The Rock</name>" in captured.out  # result unpolluted

    def test_explain_reports_fallback_reason(self, films_file, capsys):
        assert main([
            "-e", "count(doc('filmDB.xml')//film)",
            "--doc", f"filmDB.xml={films_file}",
            "--explain",
        ]) == 0
        captured = capsys.readouterr()
        assert "plan: interpreter" in captured.err
        assert "fallback: FunctionCall:" in captured.err
        assert captured.out.strip() == "2"

    def test_explain_shows_update_cost_counters(self, films_file, capsys):
        assert main([
            "-e", "insert node <film/> into doc('filmDB.xml')/films",
            "--doc", f"filmDB.xml={films_file}",
            "--explain",
        ]) == 0
        captured = capsys.readouterr()
        assert "updates: reencode full=0 subtree=1" in captured.err
        assert "index patches=" in captured.err

    def test_read_only_explain_has_no_update_line(self, films_file, capsys):
        assert main([
            "-e", "doc('filmDB.xml')//name",
            "--doc", f"filmDB.xml={films_file}",
            "--explain",
        ]) == 0
        assert "updates:" not in capsys.readouterr().err

    def test_no_lifted_pins_interpreter(self, films_file, capsys):
        assert main([
            "-e", "doc('filmDB.xml')//name",
            "--doc", f"filmDB.xml={films_file}",
            "--explain", "--no-lifted",
        ]) == 0
        captured = capsys.readouterr()
        assert "plan: interpreter" in captured.err
        assert "fallback:" not in captured.err  # disabled, not unsupported
        assert "<name>The Rock</name>" in captured.out

    def test_no_lifted_same_results(self, films_file, capsys):
        args = ["-e", "doc('filmDB.xml')//name/text()",
                "--doc", f"filmDB.xml={films_file}"]
        assert main(args) == 0
        lifted_out = capsys.readouterr().out
        assert main(args + ["--no-lifted"]) == 0
        assert capsys.readouterr().out == lifted_out


class TestCheckSubcommand:
    """`repro check`: lint without executing (routes through main)."""

    def test_clean_query_exits_zero(self, capsys):
        assert main(["check", "-e", "doc('d.xml')//item"]) == 0
        assert capsys.readouterr().out == ""

    def test_analysis_summary_flag(self, capsys):
        assert main(["check", "-e", "doc('d.xml')//item",
                     "--analysis"]) == 0
        out = capsys.readouterr().out
        assert "analysis: liftable=yes, updating=no" in out

    def test_unbound_variable_fails_with_position(self, capsys):
        assert main(["check", "-e", "1 + $missing"]) == 1
        out = capsys.readouterr().out
        assert ("<expression>:1:5: error [XPST0008]: "
                "variable $missing is not declared") in out

    def test_unknown_function_fails(self, capsys):
        assert main(["check", "-e", "no-such-fn(1)"]) == 1
        assert "[XPST0017]" in capsys.readouterr().out

    def test_parse_error_fails_with_position(self, capsys):
        assert main(["check", "-e", "1 +"]) == 1
        out = capsys.readouterr().out
        assert "error" in out and "1:4" in out

    def test_var_flag_binds_external(self, capsys):
        query = "declare variable $n external; $n + 1"
        assert main(["check", "-e", query, "--var", "n",
                     "--analysis"]) == 0
        assert "liftable=yes" in capsys.readouterr().out

    def test_query_files_and_modules(self, tmp_path, capsys):
        module = tmp_path / "film.xq"
        module.write_text("""
        module namespace film = "films";
        declare function film:byActor($a as xs:string) as node()*
        { doc("filmDB.xml")//name[../actor = $a] };
        """)
        good = tmp_path / "good.xq"
        good.write_text(
            'import module namespace f = "films" at "film.xq";\n'
            'execute at {"xrpc://y"} { f:byActor("Sean Connery") }\n')
        bad = tmp_path / "bad.xq"
        bad.write_text(
            'import module namespace f = "films" at "film.xq";\n'
            'f:byActor("A", "too-many")\n')
        assert main(["check", str(good),
                     "--module", f"film.xq={module}"]) == 0
        assert main(["check", str(good), str(bad),
                     "--module", f"film.xq={module}"]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:2:1: error [XPST0017]" in out

    def test_updating_query_summary(self, capsys):
        assert main([
            "check", "-e",
            "insert node <a/> as last into doc('d.xml')/r",
            "--analysis"]) == 0
        assert "updating=yes" in capsys.readouterr().out
