"""2PC abort/recovery paths under transport failures (satellite of the
fault-tolerance PR): participant timeout during prepare, coordinator
crash between prepare and commit, and decision replay on reconnect."""

import pytest

from repro.errors import TransactionError
from repro.net import SimulatedNetwork
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.rpc import TransactionCoordinator, XRPCPeer
from repro.rpc.client import ClientSession
from repro.rpc.isolation import IsolationManager
from repro.rpc.store import DocumentStore
from repro.soap.messages import QueryID
from repro.xdm.atomic import string as make_string

COUNTER_MODULE = """
module namespace c = "urn:counter";
declare function c:read() as xs:string
{ string(doc("counter.xml")/counter) };
declare updating function c:bump($v as xs:string)
{ replace value of node doc("counter.xml")/counter with $v };
"""


def txn_peer(network, name):
    peer = XRPCPeer(name, network)
    peer.registry.register_source(COUNTER_MODULE, location="c.xq")
    peer.store.register("counter.xml", "<counter>0</counter>")
    return peer


def counter(peer) -> str:
    return peer.store.get("counter.xml").string_value()


def journal(peer) -> list[str]:
    return [action for action, _ in peer.isolation.log.records]


def start_updates(network, participants, value="4"):
    """Drive isolated updating calls so each participant holds a
    deferred PUL awaiting 2PC, exactly like the inline peer flow."""
    query_id = QueryID(host="p0", timestamp=network.clock.now(), timeout=60)
    session = ClientSession(network, origin="p0", query_id=query_id)
    for participant in participants:
        session.call(participant, "urn:counter", "c.xq", "bump", 1,
                     [[[make_string(value)]]], updating=True)
    return query_id, session


def blackholed(network, *destinations):
    return FaultInjectingTransport(
        network, FaultPlan(blackhole=frozenset(destinations)))


class TestPrepareFailures:
    def test_participant_timeout_during_prepare_aborts_everyone(self):
        network = SimulatedNetwork()
        txn_peer(network, "p0")
        p1 = txn_peer(network, "p1")
        p2 = txn_peer(network, "p2")
        query_id, _ = start_updates(network, ["p1", "p2"])

        # p2 stops answering before phase 1.
        coordinator = TransactionCoordinator(blackholed(network, "p2"),
                                             query_id)
        coordinator.register("p1")
        coordinator.register("p2")
        outcome = coordinator.run()

        assert not outcome.committed
        assert outcome.votes == {"p1": True, "p2": False}
        assert "unreachable" in outcome.detail
        assert coordinator.state == "aborted"
        # No partial application anywhere: p1 was prepared, then rolled
        # back when p2's vote never arrived (presumed abort).
        assert counter(p1) == "0"
        assert counter(p2) == "0"
        assert journal(p1) == ["prepare", "rollback"]

    def test_unreachable_sole_participant_aborts_cleanly(self):
        network = SimulatedNetwork()
        txn_peer(network, "p0")
        p1 = txn_peer(network, "p1")
        query_id, _ = start_updates(network, ["p1"])
        coordinator = TransactionCoordinator(blackholed(network, "p1"),
                                             query_id)
        coordinator.register("p1")
        outcome = coordinator.run()
        assert not outcome.committed
        assert coordinator.state == "aborted"
        assert counter(p1) == "0"


class TestCoordinatorCrashRecovery:
    def test_crash_between_prepare_and_commit_applies_exactly_once(self):
        network = SimulatedNetwork()
        txn_peer(network, "p0")
        p1 = txn_peer(network, "p1")
        query_id, _ = start_updates(network, ["p1"])

        first = TransactionCoordinator(network, query_id)
        first.register("p1")
        assert first.prepare().votes == {"p1": True}
        assert first.state == "prepared"
        del first  # coordinator crashes holding the prepared mark

        resumed = TransactionCoordinator.resume(network, query_id, ["p1"])
        outcome = resumed.commit()
        assert outcome.committed
        assert resumed.state == "committed"
        assert counter(p1) == "4"
        assert journal(p1) == ["prepare", "commit"]

    def test_commit_replay_is_idempotent(self):
        network = SimulatedNetwork()
        txn_peer(network, "p0")
        p1 = txn_peer(network, "p1")
        query_id, _ = start_updates(network, ["p1"])
        coordinator = TransactionCoordinator(network, query_id)
        coordinator.register("p1")
        assert coordinator.run().committed

        # The commit decision arrives again (the ack was lost): the
        # participant re-acknowledges from its decision log without
        # applying anything a second time.
        replay = TransactionCoordinator.resume(network, query_id, ["p1"])
        outcome = replay.commit()
        assert outcome.committed
        assert counter(p1) == "4"
        assert journal(p1) == ["prepare", "commit"]  # no second apply

    def test_unreachable_at_commit_stays_prepared_then_replays(self):
        network = SimulatedNetwork()
        txn_peer(network, "p0")
        p1 = txn_peer(network, "p1")
        p2 = txn_peer(network, "p2")
        query_id, _ = start_updates(network, ["p1", "p2"])
        prepare_side = TransactionCoordinator(network, query_id)
        prepare_side.register("p1")
        prepare_side.register("p2")
        assert prepare_side.prepare().votes == {"p1": True, "p2": True}

        # The decision is COMMIT; p2 is unreachable when it lands.
        deciding = TransactionCoordinator.resume(blackholed(network, "p2"),
                                                 query_id, ["p1", "p2"])
        outcome = deciding.commit()
        assert not outcome.committed
        assert outcome.votes == {"p1": True, "p2": False}
        assert deciding.state == "prepared"  # decision stands, not aborted
        assert counter(p1) == "4"
        assert counter(p2) == "0"

        # Reconnect: replaying the decision completes the transaction
        # and p1 (already committed) answers from its decision log.
        recovered = TransactionCoordinator.resume(network, query_id,
                                                  ["p1", "p2"])
        outcome = recovered.commit()
        assert outcome.committed
        assert recovered.state == "committed"
        assert counter(p1) == "4"
        assert counter(p2) == "4"
        assert journal(p1) == ["prepare", "commit"]
        assert journal(p2) == ["prepare", "commit"]


class TestDecisionLog:
    def test_rollback_after_commit_is_refused(self):
        network = SimulatedNetwork()
        txn_peer(network, "p0")
        txn_peer(network, "p1")
        query_id, session = start_updates(network, ["p1"])
        coordinator = TransactionCoordinator(network, query_id)
        coordinator.register("p1")
        assert coordinator.run().committed

        reply = session.send_txn_command("p1", "rollback")
        assert not reply.ok
        assert "already committed" in reply.detail

    def test_commit_after_rollback_is_refused(self):
        network = SimulatedNetwork()
        txn_peer(network, "p0")
        p1 = txn_peer(network, "p1")
        query_id, session = start_updates(network, ["p1"])
        coordinator = TransactionCoordinator(network, query_id)
        coordinator.register("p1")
        coordinator.rollback()

        reply = session.send_txn_command("p1", "commit")
        assert not reply.ok
        assert "rolled back" in reply.detail
        assert counter(p1) == "0"

    def test_rollback_of_unknown_query_poisons_later_commit(self):
        # Presumed abort at the manager level: an abort for a queryID
        # this participant never saw must still be recorded, so a
        # delayed commit replayed afterwards is refused.
        clock = SimulatedNetwork().clock
        manager = IsolationManager(DocumentStore(), clock)
        query_id = QueryID(host="p0", timestamp=1.0, timeout=60)
        manager.rollback(query_id)  # never acquired here
        with pytest.raises(TransactionError):
            manager.commit(query_id)
