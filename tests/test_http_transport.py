"""Real loopback HTTP transport tests: SOAP XRPC over actual sockets."""

import pytest

from repro.engine import TreeEngine
from repro.errors import TransportError, XRPCFault
from repro.net import HttpTransport, HttpXRPCServer
from repro.net.transport import normalize_peer_uri
from repro.rpc import XRPCPeer
from repro.soap import XRPCRequest, build_request, parse_response
from repro.wrapper import XRPCWrapper
from repro.xdm.atomic import integer
from tests.helpers import values

ECHO_MODULE = """
module namespace m = "urn:echo";
declare function m:double($x as xs:integer) as xs:integer { $x * 2 };
"""


class TestNormalizePeerUri:
    @pytest.mark.parametrize("uri,expected", [
        ("xrpc://y.example.org", "y.example.org"),
        ("xrpc://y.example.org:8080/db", "y.example.org:8080"),
        ("xrpc://host/", "host"),
        ("http://host:99/x", "host:99"),
        ("bare-host", "bare-host"),
        ("xrpc://", "localhost"),
    ])
    def test_normalization(self, uri, expected):
        assert normalize_peer_uri(uri) == expected


class TestHttpRoundTrip:
    def test_request_response_over_http(self):
        wrapper = XRPCWrapper(engine=TreeEngine())
        wrapper.engine.registry.register_source(ECHO_MODULE, location="e.xq")
        with HttpXRPCServer(wrapper.handle) as server:
            transport = HttpTransport({"peer": server.address})
            request = XRPCRequest(module="urn:echo", method="double",
                                  arity=1, location="e.xq")
            request.add_call([[integer(21)]])
            raw = transport.send("xrpc://peer", build_request(request))
            response = parse_response(raw)
            assert response.results == [[integer(42)]]

    def test_bulk_over_http(self):
        wrapper = XRPCWrapper(engine=TreeEngine())
        wrapper.engine.registry.register_source(ECHO_MODULE, location="e.xq")
        with HttpXRPCServer(wrapper.handle) as server:
            transport = HttpTransport({"peer": server.address})
            request = XRPCRequest(module="urn:echo", method="double",
                                  arity=1, location="e.xq")
            for value in (1, 2, 3):
                request.add_call([[integer(value)]])
            response = parse_response(
                transport.send("peer", build_request(request)))
            assert response.results == [[integer(2)], [integer(4)], [integer(6)]]

    def test_fault_over_http(self):
        wrapper = XRPCWrapper(engine=TreeEngine())  # no modules registered
        with HttpXRPCServer(wrapper.handle) as server:
            transport = HttpTransport({"peer": server.address})
            request = XRPCRequest(module="ghost", method="f", arity=0)
            request.add_call([])
            raw = transport.send("peer", build_request(request))
            with pytest.raises(XRPCFault):
                parse_response(raw)

    def test_unreachable_peer(self):
        transport = HttpTransport({"peer": "127.0.0.1:1"})  # closed port
        with pytest.raises(TransportError):
            transport.send("peer", "<x/>")

    def test_keep_alive_connection_reuse(self):
        """Repeated sends to one peer ride a single pooled connection."""
        wrapper = XRPCWrapper(engine=TreeEngine())
        wrapper.engine.registry.register_source(ECHO_MODULE, location="e.xq")
        with HttpXRPCServer(wrapper.handle) as server:
            with HttpTransport({"peer": server.address}) as transport:
                request = XRPCRequest(module="urn:echo", method="double",
                                      arity=1, location="e.xq")
                request.add_call([[integer(3)]])
                payload = build_request(request)
                for _ in range(5):
                    parse_response(transport.send("peer", payload))
                stats = transport.peer_stats("peer")
                assert stats.requests == 5
                assert stats.connections_opened == 1
                assert stats.connections_reused == 4
                assert stats.bytes_sent > 0 and stats.bytes_received > 0

    def test_closed_transport_refuses_sends(self):
        transport = HttpTransport({"peer": "127.0.0.1:1"})
        transport.close()
        with pytest.raises(TransportError, match="closed"):
            transport.send("peer", "<x/>")

    def test_non_soap_error_body_raises_transport_error(self):
        """An HTML 404 from a misconfigured endpoint must surface as a
        TransportError, not propagate as an XML parse error."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
        import threading

        class NotFoundHandler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self):
                self.rfile.read(int(self.headers.get("Content-Length", "0")))
                body = (b"<!DOCTYPE html><html><body>"
                        b"<h1>404 Not Found</h1></body></html>")
                self.send_response(404)
                self.send_header("Content-Type", "text/html")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), NotFoundHandler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            with HttpTransport({"peer": f"{host}:{port}"}) as transport:
                with pytest.raises(TransportError, match="non-SOAP"):
                    transport.send("peer", "<x/>")
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def test_full_peer_query_over_http(self):
        """An XRPCPeer originating a distributed query over real HTTP."""
        serving_peer_transport = HttpTransport()
        serving = XRPCPeer("served", serving_peer_transport)
        serving.registry.register_source(ECHO_MODULE, location="e.xq")
        with HttpXRPCServer(serving.server.handle) as server:
            transport = HttpTransport({"served": server.address})
            origin = XRPCPeer("origin", transport)
            origin.registry.register_source(ECHO_MODULE, location="e.xq")
            result = origin.execute_query("""
            import module namespace m = "urn:echo" at "e.xq";
            for $i in (1 to 5)
            return execute at {"xrpc://served"} { m:double($i) }
            """)
            assert values(result.sequence) == [2, 4, 6, 8, 10]
            assert result.messages_sent == 1  # bulk over one HTTP POST


class TestConcurrentParallelDispatch:
    """True thread fan-out of send_parallel over real HTTP peers."""

    def _fleet(self, count, delay=0.0):
        """Start ``count`` echo peers; returns (transport, servers)."""
        import time

        servers = []
        transport = HttpTransport()
        for index in range(count):
            peer = XRPCPeer(f"peer{index}", HttpTransport())
            peer.registry.register_source(ECHO_MODULE, location="e.xq")
            handler = peer.server.handle
            if delay:
                handler = (lambda inner: lambda payload:
                           (time.sleep(delay), inner(payload))[1])(handler)
            server = HttpXRPCServer(handler).start()
            servers.append(server)
            transport.register_endpoint(f"peer{index}", server.address)
        return transport, servers

    def _request_payload(self, value):
        request = XRPCRequest(module="urn:echo", method="double",
                              arity=1, location="e.xq")
        request.add_call([[integer(value)]])
        return build_request(request)

    def test_parallel_faster_than_sum(self):
        import time

        delay = 0.12
        transport, servers = self._fleet(3, delay=delay)
        try:
            requests = [(f"peer{i}", self._request_payload(i))
                        for i in range(3)]
            started = time.perf_counter()
            raw = transport.send_parallel(requests)
            elapsed = time.perf_counter() - started
            assert [parse_response(r).results for r in raw] == \
                [[[integer(2 * i)]] for i in range(3)]
            # Concurrent: ~max of the branch delays, not 3 * delay.
            assert elapsed < 2 * delay
        finally:
            transport.close()
            for server in servers:
                server.stop()

    def test_parallel_fault_tolerance(self):
        """One peer faulting must not poison the other branches."""
        from repro.rpc.client import ClientSession

        transport, servers = self._fleet(2)
        # A third peer with no modules: its branch returns a SOAP fault.
        broken = XRPCPeer("broken", HttpTransport())
        broken_server = HttpXRPCServer(broken.server.handle).start()
        transport.register_endpoint("broken", broken_server.address)
        try:
            session = ClientSession(transport, origin="p0")
            results = session.call_parallel(
                [("peer0", "urn:echo", "e.xq", "double", 1,
                  [[[integer(1)]]], False),
                 ("broken", "urn:ghost", None, "nope", 0, [[]], False),
                 ("peer1", "urn:echo", "e.xq", "double", 1,
                  [[[integer(2)]]], False)],
                tolerate_faults=True)
            assert results[0] == [[integer(2)]]
            assert results[1] is None
            assert results[2] == [[integer(4)]]
        finally:
            transport.close()
            broken_server.stop()
            for server in servers:
                server.stop()

    def test_parallel_same_destination_stays_ordered(self):
        transport, servers = self._fleet(1)
        try:
            requests = [("peer0", self._request_payload(i)) for i in range(4)]
            raw = transport.send_parallel(requests)
            assert [parse_response(r).results for r in raw] == \
                [[[integer(2 * i)]] for i in range(4)]
            stats = transport.peer_stats("peer0")
            assert stats.requests == 4
            assert stats.connections_opened == 1  # all on one connection
        finally:
            transport.close()
            for server in servers:
                server.stop()
