"""Real loopback HTTP transport tests: SOAP XRPC over actual sockets."""

import pytest

from repro.engine import TreeEngine
from repro.errors import TransportError, XRPCFault
from repro.net import HttpTransport, HttpXRPCServer
from repro.net.transport import normalize_peer_uri
from repro.rpc import XRPCPeer
from repro.soap import XRPCRequest, build_request, parse_response
from repro.wrapper import XRPCWrapper
from repro.xdm.atomic import integer, string
from tests.helpers import values

ECHO_MODULE = """
module namespace m = "urn:echo";
declare function m:double($x as xs:integer) as xs:integer { $x * 2 };
"""


class TestNormalizePeerUri:
    @pytest.mark.parametrize("uri,expected", [
        ("xrpc://y.example.org", "y.example.org"),
        ("xrpc://y.example.org:8080/db", "y.example.org:8080"),
        ("xrpc://host/", "host"),
        ("http://host:99/x", "host:99"),
        ("bare-host", "bare-host"),
        ("xrpc://", "localhost"),
    ])
    def test_normalization(self, uri, expected):
        assert normalize_peer_uri(uri) == expected


class TestHttpRoundTrip:
    def test_request_response_over_http(self):
        wrapper = XRPCWrapper(engine=TreeEngine())
        wrapper.engine.registry.register_source(ECHO_MODULE, location="e.xq")
        with HttpXRPCServer(wrapper.handle) as server:
            transport = HttpTransport({"peer": server.address})
            request = XRPCRequest(module="urn:echo", method="double",
                                  arity=1, location="e.xq")
            request.add_call([[integer(21)]])
            raw = transport.send("xrpc://peer", build_request(request))
            response = parse_response(raw)
            assert response.results == [[integer(42)]]

    def test_bulk_over_http(self):
        wrapper = XRPCWrapper(engine=TreeEngine())
        wrapper.engine.registry.register_source(ECHO_MODULE, location="e.xq")
        with HttpXRPCServer(wrapper.handle) as server:
            transport = HttpTransport({"peer": server.address})
            request = XRPCRequest(module="urn:echo", method="double",
                                  arity=1, location="e.xq")
            for value in (1, 2, 3):
                request.add_call([[integer(value)]])
            response = parse_response(
                transport.send("peer", build_request(request)))
            assert response.results == [[integer(2)], [integer(4)], [integer(6)]]

    def test_fault_over_http(self):
        wrapper = XRPCWrapper(engine=TreeEngine())  # no modules registered
        with HttpXRPCServer(wrapper.handle) as server:
            transport = HttpTransport({"peer": server.address})
            request = XRPCRequest(module="ghost", method="f", arity=0)
            request.add_call([])
            raw = transport.send("peer", build_request(request))
            with pytest.raises(XRPCFault):
                parse_response(raw)

    def test_unreachable_peer(self):
        transport = HttpTransport({"peer": "127.0.0.1:1"})  # closed port
        with pytest.raises(TransportError):
            transport.send("peer", "<x/>")

    def test_full_peer_query_over_http(self):
        """An XRPCPeer originating a distributed query over real HTTP."""
        serving_peer_transport = HttpTransport()
        serving = XRPCPeer("served", serving_peer_transport)
        serving.registry.register_source(ECHO_MODULE, location="e.xq")
        with HttpXRPCServer(serving.server.handle) as server:
            transport = HttpTransport({"served": server.address})
            origin = XRPCPeer("origin", transport)
            origin.registry.register_source(ECHO_MODULE, location="e.xq")
            result = origin.execute_query("""
            import module namespace m = "urn:echo" at "e.xq";
            for $i in (1 to 5)
            return execute at {"xrpc://served"} { m:double($i) }
            """)
            assert values(result.sequence) == [2, 4, 6, 8, 10]
            assert result.messages_sent == 1  # bulk over one HTTP POST
