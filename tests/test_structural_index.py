"""Structural accelerator layer: pre/size/level encoding, StructuralIndex,
set-at-a-time axis evaluation, and its invalidation on tree mutation."""

import pytest

from repro.xdm import (
    KEY_STRIDE,
    NodeFactory,
    reencode_tree,
    structural_index,
)
from repro.xdm.nodes import ElementNode
from repro.xml import parse_document
from repro.xml.serializer import serialize, serialize_sequence
from repro.xquery.evaluator import evaluate_query
from tests.helpers import run, strings

SITE = """
<site>
  <people>
    <person id="p0"><name>Ada</name><city>London</city></person>
    <person id="p1"><name>Grace</name><city>Arlington</city></person>
  </people>
  <auctions>
    <auction><buyer ref="p0"/><price>12</price></auction>
    <auction><buyer ref="p1"/><price>99</price></auction>
  </auctions>
</site>
"""

AXIS_QUERIES = [
    "doc('s.xml')/site/people/person/name",
    "doc('s.xml')//person",
    "doc('s.xml')//person[2]/name",
    "doc('s.xml')//person[last()]",
    "doc('s.xml')//person[@id = 'p1']/city",
    "doc('s.xml')//name/..",
    "doc('s.xml')//buyer/ancestor::*",
    "doc('s.xml')//price/ancestor-or-self::node()",
    "doc('s.xml')//name/following::price",
    "doc('s.xml')//price/preceding::name",
    "doc('s.xml')//person[1]/following-sibling::person",
    "doc('s.xml')//auction[2]/preceding-sibling::auction",
    "doc('s.xml')//buyer/@ref",
    "doc('s.xml')//@ref/..",
    "doc('s.xml')//@id/following::auction",
    "doc('s.xml')//@ref/preceding::person",
    "doc('s.xml')//*/self::person",
    "(doc('s.xml')//person, doc('s.xml')//auction)/descendant-or-self::node()",
    "doc('s.xml')//person/descendant::text()",
    "doc('s.xml')//city/parent::person/child::name",
    "doc('s.xml')//people/child::*",
]


def _both_modes(query, docs):
    serialized = []
    for accelerator in (True, False):
        parsed = {uri: parse_document(text, uri=uri)
                  for uri, text in docs.items()}
        result = evaluate_query(query, doc_resolver=parsed.get,
                                accelerator=accelerator)
        serialized.append(serialize_sequence(result))
    return serialized


class TestEncoding:
    def test_parser_stamps_pre_size_level_in_one_pass(self):
        doc = parse_document("<a x='1'><b/><c>t</c></a>")
        a = doc.root_element
        assert doc.pre == 0 and doc.level == 0
        # Serials are gapped (stride KEY_STRIDE); sizes are serial-unit
        # extents: a's subtree holds attribute x, b, c, text = 4 keys.
        stride = KEY_STRIDE
        assert a.pre == stride and a.size == 4 * stride and a.level == 1
        b, c = a.child_elements()
        assert (b.level, c.level) == (2, 2)
        assert b.size == 0 and c.size == stride  # c holds one text node
        assert a.attributes[0].level == 2
        # document extent covers every serial issued after it
        assert doc.size == 5 * stride

    def test_dense_stride_recovers_historical_encoding(self):
        doc = parse_document("<a x='1'><b/><c>t</c></a>", stride=1)
        a = doc.root_element
        assert a.pre == 1 and a.size == 4
        assert doc.size == 5

    def test_descendant_window_contains_exactly_the_subtree(self):
        doc = parse_document(SITE)
        people = doc.root_element.find("people")
        lo, hi = people.pre, people.pre + people.size
        inside = [n for n in doc.descendants()
                  if lo < n.pre <= hi]
        assert set(id(n) for n in inside) == \
            set(id(n) for n in people.descendants())

    def test_structural_index_columns(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        index = structural_index(doc)
        assert [n.kind for n in index.nodes] == \
            ["document", "element", "element", "element", "element"]
        assert list(index.sizes) == [4, 3, 1, 0, 0]
        assert list(index.levels) == [0, 1, 2, 3, 2]
        assert index.name_pres("c") == [3]
        assert index.name_pres("nope") == []

    def test_index_cached_until_mutation(self):
        doc = parse_document("<a><b/></a>")
        first = structural_index(doc)
        assert structural_index(doc) is first
        doc.root_element.append(NodeFactory().element("c"))
        second = structural_index(doc)
        assert second is not first
        assert second.generation > first.generation
        assert second.name_pres("c") == [3]

    def test_set_attribute_invalidates(self):
        doc = parse_document("<a/>")
        first = structural_index(doc)
        doc.root_element.set_attribute(NodeFactory().attribute("x", "1"))
        assert structural_index(doc) is not first

    def test_reencode_restores_document_order(self):
        doc = parse_document("<a><b/><d/></a>")
        foreign = NodeFactory().element("c")  # later doc_id, early position
        a = doc.root_element
        a.children.insert(1, foreign)
        foreign.parent = a
        reencode_tree(doc)
        keys = [n.order_key for n in doc.descendants(include_self=True)]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)
        # Restamped with gaps so the next update stays O(change).
        stride = KEY_STRIDE
        assert [n.pre for n in doc.descendants(include_self=True)] == \
            [0, stride, 2 * stride, 3 * stride, 4 * stride]
        assert a.size == 3 * stride and foreign.level == 2


class TestAxisEquivalence:
    @pytest.mark.parametrize("query", AXIS_QUERIES)
    def test_accelerated_equals_naive(self, query):
        accel, naive = _both_modes(query, {"s.xml": SITE})
        assert accel == naive

    def test_attributes_merge_in_document_order(self):
        # Attribute nodes of distinct elements interleave with the global
        # order of their owners when pooled through one step.
        result = run("doc('s.xml')//@*", docs={"s.xml": SITE})
        assert [a.value for a in result] == ["p0", "p1", "p0", "p1"]
        accel, naive = _both_modes("doc('s.xml')//@*", {"s.xml": SITE})
        assert accel == naive

    def test_duplicate_context_nodes_deduplicate(self):
        query = ("let $p := doc('s.xml')//person "
                 "return ($p, $p)/descendant::text()")
        accel, naive = _both_modes(query, {"s.xml": SITE})
        assert accel == naive

    def test_covered_contexts_are_staircase_pruned(self):
        # site and its person descendants: windows overlap entirely.
        query = ("(doc('s.xml')/site, doc('s.xml')//person)"
                 "/descendant::name")
        accel, naive = _both_modes(query, {"s.xml": SITE})
        assert accel == naive
        result = run(query, docs={"s.xml": SITE})
        assert strings(result) == ["Ada", "Grace"]


class TestAdoptedFragments:
    """Call-by-value fragments out of ``n2s`` are standalone trees: the
    upward and sideways axes must stay empty at the remote side, and the
    downward/order axes must work over the fragment's own index."""

    def _adopted_person(self):
        from repro.soap import n2s, s2n
        source = parse_document(SITE)
        [person] = [e for e in source.root_element.find("people").child_elements()
                    if e.get_attribute("id").value == "p0"]
        wire = serialize(s2n([person]))
        return n2s(parse_document(wire).root_element)[0]

    @pytest.mark.parametrize("axis,expected", [
        ("parent::*", 0),
        ("ancestor::*", 0),
        ("ancestor-or-self::*", 1),     # only the fragment root itself
        ("following-sibling::*", 0),
        ("preceding-sibling::*", 0),
        ("following::*", 0),
        ("preceding::*", 0),
        ("self::person", 1),
        ("child::*", 2),
        ("descendant::node()", 4),      # name, 'Ada', city, 'London'
    ])
    def test_axes_on_adopted_fragment(self, axis, expected):
        fragment = self._adopted_person()
        for accelerator in (True, False):
            result = evaluate_query(f"$f/{axis}", variables={"f": [fragment]},
                                    context_item=fragment,
                                    accelerator=accelerator)
            assert len(result) == expected, (axis, accelerator)

    def test_adopted_fragment_attribute_axis(self):
        fragment = self._adopted_person()
        result = evaluate_query("$f/@id", variables={"f": [fragment]})
        assert [a.value for a in result] == ["p0"]


class TestUpdateInvalidation:
    def _store(self):
        return {"s.xml": parse_document(SITE, uri="s.xml")}

    def test_axes_after_pul_apply(self):
        for accelerator in (True, False):
            docs = self._store()
            # Prime the structural index, then mutate through a PUL.
            before = evaluate_query("doc('s.xml')//person",
                                    doc_resolver=docs.get,
                                    accelerator=accelerator)
            assert len(before) == 2
            evaluate_query(
                "insert node <person id='p2'><name>Edsger</name></person> "
                "as last into doc('s.xml')/site/people",
                doc_resolver=docs.get, accelerator=accelerator)
            after = evaluate_query("doc('s.xml')//person/name",
                                   doc_resolver=docs.get,
                                   accelerator=accelerator)
            assert strings(after) == ["Ada", "Grace", "Edsger"], accelerator

    def test_inserted_content_sorts_in_tree_position(self):
        # Spliced-in nodes are re-encoded into their new tree position:
        # a document-order merge must not push them to the end.
        for accelerator in (True, False):
            docs = self._store()
            evaluate_query(
                "insert node <person id='pX'><name>Alonzo</name></person> "
                "as first into doc('s.xml')/site/people",
                doc_resolver=docs.get, accelerator=accelerator)
            names = evaluate_query("doc('s.xml')//name",
                                   doc_resolver=docs.get,
                                   accelerator=accelerator)
            assert strings(names) == ["Alonzo", "Ada", "Grace"], accelerator

    def test_replace_value_on_element_reencodes(self):
        # ReplaceValue splices a fresh-factory text node into the target
        # element; without re-encoding, the new node's foreign doc_id
        # would sort it after the whole tree on the reference path.
        outputs = []
        for accelerator in (True, False):
            docs = self._store()
            evaluate_query(
                "replace value of node doc('s.xml')//person[1]/name "
                "with 'Augusta'",
                doc_resolver=docs.get, accelerator=accelerator)
            result = evaluate_query("doc('s.xml')//node()",
                                    doc_resolver=docs.get,
                                    accelerator=accelerator)
            outputs.append(serialize_sequence(result))
        assert outputs[0] == outputs[1]
        assert "Augusta" in outputs[0]

    def test_value_index_invalidated_by_update(self):
        # The equality-predicate index must be rebuilt after a PUL
        # changed the keyed values (it is cached on the structural index,
        # which mutation replaces).
        docs = self._store()
        probe = "doc('s.xml')//person[@id = 'p1']/name"
        assert strings(evaluate_query(probe, doc_resolver=docs.get)) == \
            ["Grace"]
        evaluate_query(
            "for $p in doc('s.xml')//person "
            "where $p/@id = 'p1' "
            "return rename node $p as 'retired'",
            doc_resolver=docs.get)
        assert strings(evaluate_query(probe, doc_resolver=docs.get)) == []

    def test_value_index_cache_key_not_id_based(self):
        # Two distinct anchors must never share one cached value index
        # (the old cache keyed by id(anchor) could collide after GC).
        docs = self._store()
        query = ("for $scope in (doc('s.xml')/site/people, doc('s.xml')/site) "
                 "return count($scope/descendant::person[@id = 'p0'])")
        counts = [v.value for v in evaluate_query(query, doc_resolver=docs.get)]
        assert counts == [1, 1]


class TestNodeLevelWalkers:
    def test_descendants_iterative_on_deep_tree(self):
        factory = NodeFactory()
        root = factory.element("root")
        node = root
        for _ in range(5000):
            child = factory.element("n")
            node.append(child)
            node = child
        assert sum(1 for _ in root.descendants()) == 5000
        assert sum(1 for _ in node.ancestors()) == 5000

    def test_preceding_is_lazy_and_never_walks_forward(self, monkeypatch):
        # 400 sections of 3 leaves; take a node near the *front* and the
        # last node.  The first yields of preceding must not traverse the
        # document: count children-property reads.
        doc = parse_document(
            "<r>" + "".join(
                f"<s><a/><b/><c/></s>" for _ in range(400)) + "</r>")
        sections = doc.root_element.child_elements()
        reads = []
        original = ElementNode.children
        monkeypatch.setattr(
            ElementNode, "children",
            property(lambda self: (reads.append(1), original.fget(self))[1]))

        early = sections[1]
        assert [n.name for n in early.preceding()
                if isinstance(n, ElementNode)] == ["c", "b", "a", "s"]
        early_reads = len(reads)
        assert early_reads < 40, "preceding walked forward nodes"

        reads.clear()
        last_leaf = sections[-1].child_elements()[-1]
        first_two = []
        gen = last_leaf.preceding()
        first_two.append(next(gen))
        first_two.append(next(gen))
        assert [n.name for n in first_two] == ["b", "a"]
        assert len(reads) < 40, "preceding materialized the whole document"

    def test_preceding_of_attribute_equals_owner(self):
        doc = parse_document(SITE)
        buyer = doc.root_element.find("auctions").child_elements()[0] \
            .child_elements()[0]
        ref = buyer.attributes[0]
        assert [id(n) for n in ref.preceding()] == \
            [id(n) for n in buyer.preceding()]
