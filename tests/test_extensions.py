"""Tests for the paper's optional/extension features:

* the function-cache pre-parser (section 3.3),
* SOAP XRPC message validation (XRPC.xsd, section 2.1),
* the xrpc:nodeid call-by-fragment extension (footnote 4).
"""

import pytest

from repro.engine.preparser import PreparedFunctionCache, preparse
from repro.soap import XRPCRequest, build_fault, build_request, build_response
from repro.soap import XRPCResponse
from repro.soap.nodeid import message_bytes_saved, n2s_call, s2n_call
from repro.soap.validation import validate_message
from repro.xdm import integer, string, xs
from repro.xml import serialize
from repro.xml.parser import parse_fragment


class TestPreparser:
    def test_detects_constant_call(self):
        call = preparse("""
        import module namespace f = "films" at "http://x/film.xq";
        f:filmsByActor("Sean Connery")
        """)
        assert call is not None
        assert call.module_uri == "films"
        assert call.location == "http://x/film.xq"
        assert call.local_name == "filmsByActor"
        assert call.arguments == [string("Sean Connery")]

    def test_detects_multiple_literal_types(self):
        call = preparse("""
        import module namespace m = "urn:m";
        m:f("s", 42, 3.5)
        """)
        assert call is not None
        assert [a.type.name for a in call.arguments] == \
            ["xs:string", "xs:integer", "xs:decimal"]

    def test_zero_argument_call(self):
        call = preparse('import module namespace m = "u"; m:go()')
        assert call is not None
        assert call.arity == 0

    @pytest.mark.parametrize("query", [
        "1 + 1",                                           # no import
        'import module namespace m = "u"; m:f($x)',        # variable arg
        'import module namespace m = "u"; m:f(1 + 1)',     # expression arg
        'import module namespace m = "u"; other:f(1)',     # prefix mismatch
        'import module namespace m = "u"; m:f(1), 2',      # trailing expr
        'import module namespace m = "u"; for $x in m:f(1) return $x',
    ])
    def test_rejects_general_queries(self, query):
        assert preparse(query) is None

    def test_cache_fast_path(self):
        from repro.xquery.context import DynamicContext, StaticContext
        from repro.xquery.modules import ModuleRegistry

        registry = ModuleRegistry()
        registry.register_source("""
        module namespace m = "urn:m";
        declare function m:double($x as xs:integer) as xs:integer { $x * 2 };
        """)
        cache = PreparedFunctionCache(registry)
        fallback_calls = []

        result = cache.execute(
            'import module namespace m = "urn:m"; m:double(21)',
            make_context=lambda: DynamicContext(StaticContext()),
            fallback=lambda src: fallback_calls.append(src) or [])
        assert result == [integer(42)]
        assert cache.hits == 1
        assert not fallback_calls

        cache.execute("1 + 1",
                      make_context=lambda: DynamicContext(StaticContext()),
                      fallback=lambda src: fallback_calls.append(src) or [])
        assert cache.misses == 1
        assert fallback_calls == ["1 + 1"]


class TestMessageValidation:
    def _request_text(self) -> str:
        request = XRPCRequest(module="films", method="filmsByActor", arity=1,
                              location="f.xq")
        request.add_call([[string("Sean Connery")]])
        return build_request(request)

    def test_valid_request(self):
        report = validate_message(self._request_text())
        assert report.valid, report.errors
        assert report.message_kind == "request"

    def test_valid_response(self):
        response = XRPCResponse(module="m", method="f",
                                results=[[integer(1)], []])
        report = validate_message(build_response(response))
        assert report.valid, report.errors
        assert report.message_kind == "response"

    def test_valid_fault(self):
        report = validate_message(build_fault("env:Sender", "nope"))
        assert report.valid
        assert report.message_kind == "fault"

    def test_not_xml(self):
        report = validate_message("garbage <")
        assert not report.valid

    def test_wrong_root(self):
        report = validate_message("<not-an-envelope/>")
        assert not report.valid

    def test_missing_arity(self):
        text = self._request_text().replace(' arity="1"', "")
        report = validate_message(text)
        assert any("arity" in e for e in report.errors)

    def test_arity_mismatch_detected(self):
        text = self._request_text().replace('arity="1"', 'arity="2"')
        report = validate_message(text)
        assert any("parameter sequences" in e for e in report.errors)

    def test_unknown_value_element(self):
        text = self._request_text().replace(
            "<xrpc:atomic-value", "<xrpc:mystery-value").replace(
            "</xrpc:atomic-value>", "</xrpc:mystery-value>")
        report = validate_message(text)
        assert any("invalid value element" in e for e in report.errors)

    def test_unknown_xsd_type(self):
        text = self._request_text().replace("xs:string", "xs:nonsense")
        report = validate_message(text)
        assert any("unknown XML Schema type" in e for e in report.errors)

    def test_txn_command_validates(self):
        from repro.soap.messages import QueryID, TxnCommand, build_txn_command
        text = build_txn_command(TxnCommand("prepare", QueryID("h", 1.0, 9)))
        report = validate_message(text)
        assert report.valid
        assert report.message_kind == "txn"


class TestNodeIdExtension:
    def test_descendant_becomes_reference(self):
        tree = parse_fragment("<a><b><c>leaf</c></b><d/></a>")
        c = tree.children[0].children[0]
        sequences = s2n_call([[tree], [c]])
        holder = sequences[1].child_elements()[0]
        nodeid = holder.get_attribute("xrpc:nodeid")
        assert nodeid is not None
        assert nodeid.value == "0.0/0/0"
        assert holder.children == []  # no duplicated serialization

    def test_relationship_preserved_after_round_trip(self):
        tree = parse_fragment("<a><b><c>leaf</c></b></a>")
        c = tree.children[0].children[0]
        wire = [parse_fragment(serialize(s)) for s in s2n_call([[tree], [c]])]
        [[tree_copy], [c_copy]] = n2s_call(wire)
        # The paper's guarantee: the descendant relationship survives.
        assert c_copy.root() is tree_copy
        assert c_copy in list(tree_copy.descendants())
        assert c_copy.string_value() == "leaf"

    def test_self_reference(self):
        tree = parse_fragment("<a><b/></a>")
        [[copy1], [copy2]] = n2s_call(
            [parse_fragment(serialize(s)) for s in s2n_call([[tree], [tree]])])
        assert copy1 is copy2  # descendant-or-*self*

    def test_unrelated_nodes_serialize_fully(self):
        left = parse_fragment("<x>1</x>")
        right = parse_fragment("<y>2</y>")
        sequences = s2n_call([[left], [right]])
        for sequence in sequences:
            holder = sequence.child_elements()[0]
            assert holder.get_attribute("xrpc:nodeid") is None

    def test_atomics_pass_through(self):
        [[value]] = n2s_call(s2n_call([[integer(5)]]))
        assert value == integer(5)
        assert value.type is xs.integer

    def test_compression_benefit(self):
        # A large anchor + its descendant: by-fragment must shrink the
        # message (the paper: "useful for compressing the SOAP message").
        tree = parse_fragment(
            "<a>" + "<b><c>text content here</c></b>" * 50 + "</a>")
        big_child = tree.children[10]
        saved = message_bytes_saved([[tree], [big_child]])
        assert saved > 0

    def test_plain_interop(self):
        # Sequences without nodeids decode identically via n2s_call.
        from repro.soap import s2n
        sequence = [string("x"), integer(2)]
        wire = parse_fragment(serialize(s2n(sequence)))
        assert n2s_call([wire]) == [sequence]
