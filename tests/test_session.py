"""The unified session API: Database/PreparedQuery facade,
ExecutionContext threading, plan-cache bounds, thread safety, and the
peer's lifted-first routing."""

import threading

import pytest

from repro.engine import Engine
from repro.engine.base import Explain
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.session import Database, ExecutionContext, PreparedQuery
from repro.workloads.xmark import XMarkConfig, generate_auctions, generate_persons
from repro.xdm.structural import structural_index
from repro.xml.serializer import serialize_sequence
from repro.xquery.evaluator import CompiledQuery, evaluate_query

CONFIG = XMarkConfig(persons=12, closed_auctions=30, open_auctions=6,
                     matches=3)

PERSONS = generate_persons(CONFIG)
AUCTIONS = generate_auctions(CONFIG)


@pytest.fixture
def db():
    database = Database()
    database.register("persons.xml", PERSONS)
    database.register("auctions.xml", AUCTIONS)
    return database


class TestDatabaseFacade:
    def test_execute_path_query_lifted(self, db):
        result = db.execute("doc('persons.xml')//person/name")
        assert len(result) == CONFIG.persons
        assert db.stats().lifted_executions == 1

    def test_lifted_vs_interpreter_equivalence(self, db):
        """The same queries through both pipelines of the facade."""
        pinned = Database(try_lifted=False)
        pinned.register("persons.xml", PERSONS)
        pinned.register("auctions.xml", AUCTIONS)
        queries = [
            "doc('persons.xml')/site/people/person/name",
            "doc('auctions.xml')//closed_auction/price",
            "for $p in doc('persons.xml')//person return $p/@id",
            "doc('auctions.xml')//closed_auction"
            "[buyer/@person = 'person0']/price",
            "for $id in ('person0', 'person1') "
            "return doc('persons.xml')//person[@id = $id]/name",
        ]
        for query in queries:
            lifted = db.execute(query)
            interpreted = pinned.execute(query)
            assert serialize_sequence(lifted) == \
                serialize_sequence(interpreted), query
            assert db.prepare(query).explain().plan == "lifted"
        assert pinned.stats().lifted_executions == 0

    def test_variable_binding_coercion(self, db):
        result = db.execute(
            "declare variable $pid external; "
            "doc('persons.xml')//person[@id = $pid]/name",
            pid="person0")
        assert len(result) == 1
        numbers = db.execute("declare variable $n external; $n + 1", n=41)
        assert numbers[0].value == 42

    def test_explain_reports_plan_and_timings(self, db):
        prepared = db.prepare("doc('persons.xml')//person/name")
        explain = prepared.explain()
        assert explain.plan == "lifted"
        assert explain.fallback_reason is None
        assert explain.compile_seconds >= 0.0
        assert explain.execute_seconds > 0.0

    def test_explain_records_fallback_reason(self, db):
        explain = db.explain("count(doc('persons.xml')//person)")
        assert explain.plan == "interpreter"
        assert explain.fallback_reason.startswith("FunctionCall:")

    def test_no_lifted_database_pins_interpreter(self):
        pinned = Database(try_lifted=False)
        pinned.register("persons.xml", PERSONS)
        explain = pinned.explain("doc('persons.xml')//person")
        assert explain.plan == "interpreter"
        assert explain.fallback_reason is None

    def test_updating_query_applies_to_store(self, db):
        db.execute("insert node <person id='extra'/> "
                   "into doc('persons.xml')/site/people")
        assert len(db.execute("doc('persons.xml')//person")) == \
            CONFIG.persons + 1

    def test_prepare_surfaces_syntax_errors_eagerly(self, db):
        from repro.errors import XQueryError
        with pytest.raises(XQueryError):
            db.prepare("1 +")

    def test_stats_counts_cache_and_plans(self, db):
        query = "doc('persons.xml')//person/name"
        prepared = db.prepare(query)
        prepared.execute()
        prepared.execute()
        db.execute("count(doc('persons.xml')//person)")
        stats = db.stats()
        assert stats.executions == 3
        assert stats.lifted_executions == 2
        assert stats.interpreter_executions == 1
        assert stats.plan_cache_misses >= 2
        assert stats.plan_cache_hits >= 2
        assert stats.documents == 2


class TestLazyCursor:
    def test_iter_defers_execution(self, db):
        cursor = db.iter("doc('persons.xml')//person/name")
        assert db.stats().executions == 0  # nothing pulled yet
        first = next(cursor)
        assert first.string_value()
        assert db.stats().executions == 1

    def test_iter_streams_all_items(self, db):
        items = list(db.iter("doc('persons.xml')//person/name"))
        assert len(items) == CONFIG.persons


class TestDeprecationShims:
    """The pre-session-API keyword signatures still work unchanged."""

    def test_engine_execute_lifted_old_signature(self, db):
        engine = Engine()
        result = engine.execute_lifted("doc('persons.xml')//person/name",
                                       doc_resolver=db._resolve_document)
        assert len(result) == CONFIG.persons
        assert engine.last_plan == "lifted"

    def test_compiled_query_execute_old_kwargs(self, db):
        compiled = CompiledQuery("doc('persons.xml')//person/name")
        result, pul = compiled.execute(doc_resolver=db._resolve_document)
        assert len(result) == CONFIG.persons
        assert not pul

    def test_compiled_query_run_takes_context(self, db):
        compiled = CompiledQuery(
            "declare variable $pid external; "
            "doc('persons.xml')//person[@id = $pid]/name")
        from repro.xdm.atomic import string
        result, _ = compiled.run(ExecutionContext(
            doc_resolver=db._resolve_document,
            variables={"pid": [string("person0")]}))
        assert len(result) == 1

    def test_evaluate_query_convenience_still_works(self, db):
        result = evaluate_query("doc('persons.xml')//person/name",
                                doc_resolver=db._resolve_document)
        assert len(result) == CONFIG.persons


class TestPlanCacheLRU:
    def test_cache_bounded_with_lru_eviction(self):
        engine = Engine(plan_cache_size=2)
        engine.compile("1 + 1")
        engine.compile("2 + 2")
        engine.compile("3 + 3")  # evicts "1 + 1"
        assert engine.cache_stats()["plan_cache_entries"] == 2
        misses_before = engine.plan_cache_misses
        engine.compile("1 + 1")  # must recompile
        assert engine.plan_cache_misses == misses_before + 1

    def test_hit_refreshes_recency(self):
        engine = Engine(plan_cache_size=2)
        engine.compile("1 + 1")
        engine.compile("2 + 2")
        engine.compile("1 + 1")  # refresh: now "2 + 2" is oldest
        engine.compile("3 + 3")  # evicts "2 + 2"
        hits_before = engine.plan_cache_hits
        engine.compile("1 + 1")
        assert engine.plan_cache_hits == hits_before + 1

    def test_unbounded_when_size_none(self):
        engine = Engine(plan_cache_size=None)
        for n in range(300):
            engine.compile(f"{n} + {n}")
        assert engine.cache_stats()["plan_cache_entries"] == 300

    def test_hit_miss_counters(self):
        engine = Engine()
        engine.compile("1 + 1")
        engine.compile("1 + 1")
        engine.compile("2 + 2")
        assert engine.plan_cache_hits == 1
        assert engine.plan_cache_misses == 2
        assert engine.last_compile_cache_hit is False
        engine.compile("2 + 2")
        assert engine.last_compile_cache_hit is True


class TestThreadSafety:
    def test_concurrent_prepare_and_execute(self, db):
        # Pre-warm the structural indexes so worker threads only read.
        db.execute("doc('persons.xml')//person/name")
        db.execute("doc('auctions.xml')//closed_auction/price")
        expected_names = CONFIG.persons
        expected_auctions = CONFIG.closed_auctions
        errors: list = []

        def worker(seed: int) -> None:
            try:
                for round_ in range(10):
                    n = (seed + round_) % 7
                    names = db.execute("doc('persons.xml')//person/name")
                    assert len(names) == expected_names
                    prices = db.execute(
                        "doc('auctions.xml')//closed_auction/price")
                    assert len(prices) == expected_auctions
                    # Distinct sources churn the bounded plan cache.
                    total = db.execute(f"{n} + {n}")
                    assert total[0].value == 2 * n
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = db.stats()
        assert stats.executions == 2 + 8 * 10 * 3

    def test_concurrent_compile_bounded_cache(self):
        engine = Engine(plan_cache_size=4)
        errors: list = []

        def compiler(seed: int) -> None:
            try:
                for n in range(50):
                    engine.compile(f"{(seed * 31 + n) % 10} + 1")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=compiler, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert engine.cache_stats()["plan_cache_entries"] <= 4


class TestAlgebraEqualityProbe:
    """The lifted predicate path probes the cached value index
    (ROADMAP: '[x = v] hash-join probe instead of re-scan')."""

    def test_probe_matches_interpreter_and_caches(self, db):
        query = ("for $id in ('person0', 'person1', 'person999') "
                 "return doc('persons.xml')//person[@id = $id]/name")
        lifted = db.execute(query)
        assert db.prepare(query).explain().plan == "lifted"
        interpreted = evaluate_query(query,
                                     doc_resolver=db._resolve_document)
        assert serialize_sequence(lifted) == serialize_sequence(interpreted)
        index = structural_index(db.store.get("persons.xml"))
        probe_keys = [key for key in index.value_indexes
                      if key[1] == "descendant" and key[3] == "person"]
        assert probe_keys, "lifted run must populate the value index"
        # A second run reuses the cached index (same key set, no growth).
        before = len(index.value_indexes)
        db.execute(query)
        assert len(index.value_indexes) == before

    def test_literal_probe_equivalence(self, db):
        query = ("doc('auctions.xml')//closed_auction"
                 "[buyer/@person = 'person0']/price")
        lifted = db.execute(query)
        interpreted = evaluate_query(query,
                                     doc_resolver=db._resolve_document)
        assert serialize_sequence(lifted) == serialize_sequence(interpreted)
        assert lifted, "query unexpectedly empty"


class TestPeerUnifiedPipeline:
    """Acceptance: the peer routes through the lifted pipeline by
    default and records fallback telemetry."""

    @pytest.fixture
    def peer(self):
        network = SimulatedNetwork()
        peer = XRPCPeer("p0.example.org", network)
        peer.store.register("persons.xml", PERSONS)
        peer.store.register("auctions.xml", AUCTIONS)
        return peer

    def test_downward_axis_query_runs_lifted(self, peer):
        result = peer.execute_query("doc('persons.xml')//person/name")
        assert result.explain().plan == "lifted"
        assert result.explain().fallback_reason is None
        assert len(result.sequence) == CONFIG.persons

    def test_reverse_axis_query_runs_lifted(self, peer):
        result = peer.execute_query(
            "doc('persons.xml')//name/ancestor::person")
        explain = result.explain()
        assert explain.plan == "lifted"
        assert explain.fallback_reason is None
        assert len(result.sequence) == CONFIG.persons

    def test_unsupported_query_falls_back_with_reason(self, peer):
        result = peer.execute_query(
            "count(doc('persons.xml')//person)")
        explain = result.explain()
        assert explain.plan == "interpreter"
        assert explain.fallback_reason.startswith("FunctionCall:")
        assert explain.fallback_code == "function-not-lifted"
        assert peer.engine.fallback_stats() == {"function-not-lifted": 1}
        assert result.sequence[0].value == CONFIG.persons

    def test_peer_lifted_matches_interpreter(self, peer):
        query = "doc('auctions.xml')//closed_auction/buyer/@person"
        lifted = peer.execute_query(query)
        pinned = peer.execute_query(query, try_lifted=False)
        assert pinned.plan == "interpreter"
        assert serialize_sequence(lifted.sequence) == \
            serialize_sequence(pinned.sequence)

    def test_engine_telemetry_mirrors_query_result(self, peer):
        result = peer.execute_query("doc('persons.xml')//person")
        assert peer.engine.last_plan == result.plan == "lifted"
        result = peer.execute_query("count(doc('persons.xml')//person)")
        assert peer.engine.last_plan == result.plan == "interpreter"
        assert peer.engine.last_fallback_reason == result.fallback_reason

    def test_explain_is_session_api_shape(self, peer):
        explain = peer.execute_query("doc('persons.xml')//person").explain()
        assert isinstance(explain, Explain)


class TestNoSpeculativeUpdateShipping:
    """An updating remote call must never ship twice: a *dynamic* lifted
    bail after dispatch would re-ship it from the interpreter fallback,
    so updating queries route to the record-then-ship batching executor
    up front."""

    COUNTER_MODULE = """
    module namespace c = "urn:counter";
    declare updating function c:bump()
    { insert node <hit/> into doc("log.xml")/log };
    """

    @pytest.fixture
    def site(self):
        network = SimulatedNetwork()
        origin = XRPCPeer("p0", network)
        server = XRPCPeer("y", network)
        for peer in (origin, server):
            peer.registry.register_source(self.COUNTER_MODULE,
                                          location="counter.xq")
        server.store.register("log.xml", "<log/>")
        origin.store.register("d.xml", "<d><a>1</a><a>2</a></d>")
        return origin, server

    def test_dynamic_bail_does_not_double_apply(self, site):
        origin, server = site
        # The positional predicate is only detected at *runtime* (its
        # value is numeric), so it escapes the static preflight — the
        # shape that used to ship bump() from the lifted attempt and
        # again from the fallback.
        query = """
        import module namespace c = "urn:counter" at "counter.xq";
        declare variable $n external;
        ( execute at {"xrpc://y"} { c:bump() },
          doc("d.xml")//a[$n] )
        """
        from repro.xdm.atomic import integer
        result = origin.execute_query(query, variables={"n": [integer(1)]})
        hits = server.store.get("log.xml").root_element.children
        assert len(hits) == 1, "updating call must apply exactly once"
        assert result.plan == "interpreter"
        assert "updating" in result.fallback_reason

    def test_read_only_single_site_still_lifts(self, site):
        origin, server = site
        server.registry.register_source(
            'module namespace r = "urn:reader"; '
            'declare function r:size() as xs:integer '
            '{ count(doc("log.xml")/log/*) };', location="reader.xq")
        origin.registry.register_source(
            'module namespace r = "urn:reader"; '
            'declare function r:size() as xs:integer '
            '{ count(doc("log.xml")/log/*) };', location="reader.xq")
        result = origin.execute_query("""
        import module namespace r = "urn:reader" at "reader.xq";
        execute at {"xrpc://y"} { r:size() }
        """)
        assert result.plan == "lifted"
        assert result.sequence[0].value == 0
