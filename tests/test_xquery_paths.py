"""XQuery path expression and axis tests."""

import pytest

from repro.errors import TypeError_
from tests.helpers import run, strings, values, xml

FILMS = """
<films>
  <film year="1996"><name>The Rock</name><actor>Sean Connery</actor></film>
  <film year="1964"><name>Goldfinger</name><actor>Sean Connery</actor></film>
  <film year="1990"><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>
"""

DOCS = {"filmDB.xml": FILMS}


class TestChildAndDescendant:
    def test_child_step(self):
        result = run("doc('filmDB.xml')/films/film/name", docs=DOCS)
        assert strings(result) == ["The Rock", "Goldfinger", "Green Card"]

    def test_descendant_shortcut(self):
        result = run("doc('filmDB.xml')//name", docs=DOCS)
        assert len(result) == 3

    def test_wildcard(self):
        result = run("doc('filmDB.xml')/films/film[1]/*", docs=DOCS)
        assert [n.name for n in result] == ["name", "actor"]

    def test_document_order_maintained(self):
        result = run("doc('filmDB.xml')//film/(actor | name)", docs=DOCS) \
            if False else run("doc('filmDB.xml')//film/name | doc('filmDB.xml')//film/actor", docs=DOCS)
        names = [n.name for n in result]
        assert names == ["name", "actor"] * 3

    def test_dedup_after_step(self):
        # Both films' parent is the same <films> element: one result only.
        result = run("doc('filmDB.xml')//film/..", docs=DOCS)
        assert len(result) == 1
        assert result[0].name == "films"


class TestPredicates:
    def test_positional(self):
        result = run("doc('filmDB.xml')//film[2]/name", docs=DOCS)
        assert strings(result) == ["Goldfinger"]

    def test_last(self):
        result = run("doc('filmDB.xml')//film[last()]/name", docs=DOCS)
        assert strings(result) == ["Green Card"]

    def test_value_predicate(self):
        query = "doc('filmDB.xml')//film[actor = 'Sean Connery']/name"
        assert strings(run(query, docs=DOCS)) == ["The Rock", "Goldfinger"]

    def test_paper_q1_shape(self):
        # The film:filmsByActor body from the paper.
        query = "doc('filmDB.xml')//name[../actor = 'Sean Connery']"
        assert strings(run(query, docs=DOCS)) == ["The Rock", "Goldfinger"]

    def test_attribute_predicate(self):
        query = "doc('filmDB.xml')//film[@year = '1990']/name"
        assert strings(run(query, docs=DOCS)) == ["Green Card"]

    def test_chained_predicates(self):
        query = "doc('filmDB.xml')//film[actor = 'Sean Connery'][2]/name"
        assert strings(run(query, docs=DOCS)) == ["Goldfinger"]

    def test_predicate_on_sequence(self):
        assert values(run("(10, 20, 30)[2]")) == [20]

    def test_boolean_predicate_on_sequence(self):
        assert values(run("(1, 2, 3)[. > 1]")) == [2, 3]


class TestAttributes:
    def test_at_shortcut(self):
        result = run("doc('filmDB.xml')//film[1]/@year", docs=DOCS)
        assert strings(result) == ["1996"]

    def test_attribute_axis_explicit(self):
        result = run("doc('filmDB.xml')//film[1]/attribute::year", docs=DOCS)
        assert strings(result) == ["1996"]

    def test_attribute_comparison_numeric(self):
        query = "doc('filmDB.xml')//film[@year > 1990]/name"
        assert strings(run(query, docs=DOCS)) == ["The Rock"]


class TestOtherAxes:
    def test_parent(self):
        result = run("doc('filmDB.xml')//name[1]/..", docs=DOCS)
        assert result[0].name == "film"

    def test_ancestor(self):
        result = run("doc('filmDB.xml')//name[. = 'Goldfinger']/ancestor::films",
                     docs=DOCS)
        assert len(result) == 1

    def test_self(self):
        result = run("doc('filmDB.xml')//film[1]/self::film", docs=DOCS)
        assert len(result) == 1

    def test_following_sibling(self):
        query = "doc('filmDB.xml')//film[1]/following-sibling::film/name"
        assert strings(run(query, docs=DOCS)) == ["Goldfinger", "Green Card"]

    def test_preceding_sibling(self):
        query = "doc('filmDB.xml')//film[3]/preceding-sibling::film/name"
        assert strings(run(query, docs=DOCS)) == ["The Rock", "Goldfinger"]

    def test_descendant_or_self(self):
        result = run("doc('filmDB.xml')/films/descendant-or-self::films", docs=DOCS)
        assert len(result) == 1

    def test_kind_test_text(self):
        result = run("(doc('filmDB.xml')//name)[1]/text()", docs=DOCS)
        assert strings(result) == ["The Rock"]

    def test_positional_predicate_is_per_parent(self):
        # //name[1] means "first name child of each parent": all three
        # films contribute one — classic XPath semantics.
        result = run("doc('filmDB.xml')//name[1]", docs=DOCS)
        assert len(result) == 3

    def test_following(self):
        query = "count(doc('filmDB.xml')//film[2]/following::*)"
        # film[3] subtree: film, name, actor = 3 elements.
        assert values(run(query, docs=DOCS)) == [3]

    def test_preceding(self):
        query = "count(doc('filmDB.xml')//film[2]/preceding::*)"
        assert values(run(query, docs=DOCS)) == [3]


class TestPathOnVariables:
    def test_variable_start(self):
        query = "let $d := doc('filmDB.xml') return ($d//actor)[1]"
        assert strings(run(query, docs=DOCS)) == ["Sean Connery"]

    def test_constructed_tree_navigation(self):
        query = "let $e := <a><b>1</b><b>2</b></a> return $e/b[2]"
        assert strings(run(query)) == ["2"]

    def test_path_over_for_variable(self):
        query = ("for $f in doc('filmDB.xml')//film "
                 "where $f/@year < 1990 return $f/name")
        assert strings(run(query, docs=DOCS)) == ["Goldfinger"]

    def test_step_on_atomic_raises(self):
        with pytest.raises(TypeError_):
            run("(1)/a")


class TestSetOps:
    def test_union_dedups_and_orders(self):
        query = ("let $d := doc('filmDB.xml') "
                 "return count($d//film | $d//film[1])")
        assert values(run(query, docs=DOCS)) == [3]

    def test_intersect(self):
        query = ("let $d := doc('filmDB.xml') "
                 "return count($d//film intersect $d//film[2])")
        assert values(run(query, docs=DOCS)) == [1]

    def test_except(self):
        query = ("let $d := doc('filmDB.xml') "
                 "return ($d//film except $d//film[2])/name/text()")
        assert strings(run(query, docs=DOCS)) == ["The Rock", "Green Card"]


class TestNamespaceTests:
    NS_DOC = {"ns.xml": '<root xmlns:p="urn:p"><p:a>1</p:a><a>2</a></root>'}

    def test_prefixed_name_test(self):
        query = ("declare namespace q = 'urn:p'; "
                 "doc('ns.xml')/root/q:a")
        assert strings(run(query, docs=self.NS_DOC)) == ["1"]

    def test_unprefixed_matches_no_namespace(self):
        result = run("doc('ns.xml')/root/a", docs=self.NS_DOC)
        assert strings(result) == ["2"]

    def test_wildcard_prefix(self):
        result = run("doc('ns.xml')/root/*:a", docs=self.NS_DOC)
        assert len(result) == 2
