"""End-to-end distributed XRPC tests over the simulated network.

Reproduces the paper's worked examples Q1, Q2, Q3 and Q6, plus the
protocol-level behaviours: bulk RPC message counts, call-by-value
semantics across peers, fault propagation, and nested calls.
"""

import pytest

from repro.engine import MonetEngine, TreeEngine
from repro.errors import XRPCFault
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from tests.helpers import strings, values, xml

FILM_MODULE = """
module namespace film = "films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor = $actor] };
"""

FILM_MODULE_LOCATION = "http://x.example.org/film.xq"

FILMS_Y = """<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>"""

FILMS_Z = """<films>
<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>
<film><name>The Untouchables</name><actor>Sean Connery</actor></film>
</films>"""


@pytest.fixture
def network():
    return SimulatedNetwork()


@pytest.fixture
def peers(network):
    """Three peers: p0 (origin), y and z (film servers)."""
    p0 = XRPCPeer("p0.example.org", network)
    y = XRPCPeer("y.example.org", network)
    z = XRPCPeer("z.example.org", network)
    for peer in (p0, y, z):
        peer.registry.register_source(FILM_MODULE,
                                      location=FILM_MODULE_LOCATION)
    y.store.register("filmDB.xml", FILMS_Y)
    z.store.register("filmDB.xml", FILMS_Z)
    return p0, y, z


QUERY_Q1 = f"""
import module namespace f="films" at "{FILM_MODULE_LOCATION}";
<films> {{
  execute at {{"xrpc://y.example.org"}}
  {{ f:filmsByActor("Sean Connery") }}
}} </films>
"""

QUERY_Q2 = f"""
import module namespace f="films" at "{FILM_MODULE_LOCATION}";
<films> {{
  for $actor in ("Julie Andrews", "Sean Connery")
  let $dst := "xrpc://y.example.org"
  return execute at {{$dst}} {{ f:filmsByActor($actor) }}
}} </films>
"""

QUERY_Q3 = f"""
import module namespace f="films" at "{FILM_MODULE_LOCATION}";
<films> {{
  for $actor in ("Julie Andrews", "Sean Connery")
  for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
  return execute at {{$dst}} {{ f:filmsByActor($actor) }}
}} </films>
"""


class TestPaperExamples:
    def test_q1_single_call(self, peers):
        p0, y, z = peers
        result = p0.execute_query(QUERY_Q1)
        assert xml(result.sequence) == \
            "<films><name>The Rock</name><name>Goldfinger</name></films>"

    def test_q2_loop_same_destination(self, peers):
        p0, y, z = peers
        result = p0.execute_query(QUERY_Q2)
        # Julie Andrews has no films on y; Sean Connery has two.
        assert xml(result.sequence) == \
            "<films><name>The Rock</name><name>Goldfinger</name></films>"

    def test_q2_bulk_uses_single_message(self, peers, network):
        p0, y, z = peers
        network.reset_stats()
        result = p0.execute_query(QUERY_Q2)
        assert result.used_bulk_rpc
        # Both loop iterations travel in ONE bulk request.
        assert result.messages_sent == 1
        assert result.calls_shipped == 2

    def test_q3_multiple_destinations(self, peers):
        p0, y, z = peers
        result = p0.execute_query(QUERY_Q3)
        # Order must follow the iteration order (y,z alternating actors),
        # regardless of out-of-order bulk processing.
        assert strings(result.sequence[0].children) == [
            "Sound Of Music",       # Julie Andrews @ z
            "The Rock", "Goldfinger",   # Sean Connery @ y
            "The Untouchables",     # Sean Connery @ z
        ]

    def test_q3_one_bulk_message_per_peer(self, peers):
        p0, y, z = peers
        result = p0.execute_query(QUERY_Q3)
        # Four iterations, two destinations -> exactly two messages.
        assert result.messages_sent == 2
        assert result.calls_shipped == 4

    def test_one_at_a_time_message_count(self, peers):
        p0, y, z = peers
        result = p0.execute_query(QUERY_Q3, force_one_at_a_time=True)
        assert result.messages_sent == 4
        assert not result.used_bulk_rpc
        assert strings(result.sequence[0].children) == [
            "Sound Of Music", "The Rock", "Goldfinger", "The Untouchables"]

    def test_q6_sequence_construction_order(self, peers):
        p0, y, z = peers
        query = f"""
        import module namespace f="films" at "{FILM_MODULE_LOCATION}";
        for $name in ("Julie", "Sean")
        let $connery := concat($name, " ", "Connery")
        let $andrews := concat($name, " ", "Andrews")
        return (
          execute at {{"xrpc://y.example.org"}} {{ f:filmsByActor($connery) }},
          execute at {{"xrpc://y.example.org"}} {{ f:filmsByActor($andrews) }} )
        """
        result = p0.execute_query(query)
        assert strings(result.sequence) == ["The Rock", "Goldfinger"]
        # Bulk groups by (destination, function): a single message.
        assert result.messages_sent == 1
        assert result.calls_shipped == 4


class TestCallByValue:
    def test_remote_results_are_fresh_fragments(self, peers):
        p0, y, z = peers
        query = f"""
        import module namespace f="films" at "{FILM_MODULE_LOCATION}";
        execute at {{"xrpc://y.example.org"}} {{ f:filmsByActor("Sean Connery") }}
        """
        result = p0.execute_query(query)
        for node in result.sequence:
            assert node.parent is None
            assert list(node.ancestors()) == []

    def test_node_parameter_shipped_by_value(self, network):
        module = """
        module namespace m = "urn:m";
        declare function m:parent-of($n as node()) as xs:string
        { if (empty($n/..)) then "no-parent" else "has-parent" };
        """
        p0 = XRPCPeer("a", network)
        p1 = XRPCPeer("b", network)
        for peer in (p0, p1):
            peer.registry.register_source(module, location="m.xq")
        query = """
        import module namespace m = "urn:m" at "m.xq";
        let $tree := <root><leaf/></root>
        return execute at {"xrpc://b"} { m:parent-of($tree/leaf) }
        """
        result = p0.execute_query(query)
        # At the caller $tree/leaf has a parent; by-value shipping
        # destroys the relationship at the remote side.
        assert values(result.sequence) == ["no-parent"]


class TestFaults:
    def test_missing_module_fault_propagates(self, network):
        p0 = XRPCPeer("a", network)
        p1 = XRPCPeer("b", network)
        p0.registry.register_source(FILM_MODULE, location=FILM_MODULE_LOCATION)
        # p1 does NOT have the films module.
        query = f"""
        import module namespace f="films" at "{FILM_MODULE_LOCATION}";
        execute at {{"xrpc://b"}} {{ f:filmsByActor("X") }}
        """
        with pytest.raises(XRPCFault) as info:
            p0.execute_query(query)
        assert "could not load module" in str(info.value)

    def test_unknown_peer_raises(self, peers):
        p0, y, z = peers
        query = f"""
        import module namespace f="films" at "{FILM_MODULE_LOCATION}";
        execute at {{"xrpc://nowhere.example.org"}} {{ f:filmsByActor("X") }}
        """
        from repro.errors import TransportError
        with pytest.raises(TransportError):
            p0.execute_query(query)

    def test_remote_runtime_error_becomes_fault(self, network):
        module = """
        module namespace m = "urn:m";
        declare function m:boom() { error('X0', 'kaboom') };
        """
        p0 = XRPCPeer("a", network)
        p1 = XRPCPeer("b", network)
        for peer in (p0, p1):
            peer.registry.register_source(module, location="m.xq")
        query = """
        import module namespace m = "urn:m" at "m.xq";
        execute at {"xrpc://b"} { m:boom() }
        """
        with pytest.raises(XRPCFault) as info:
            p0.execute_query(query)
        assert "kaboom" in str(info.value)


class TestNestedCalls:
    def test_two_hop_call(self, network):
        """p0 -> b -> c: nested XRPC calls (the call tree of section 2.2)."""
        module = """
        module namespace m = "urn:m";
        declare function m:leaf() as xs:string { "from-c" };
        declare function m:middle() as xs:string
        { concat("via-b:", execute at {"xrpc://c"} { m:leaf() }) };
        """
        a = XRPCPeer("a", network)
        b = XRPCPeer("b", network)
        c = XRPCPeer("c", network)
        for peer in (a, b, c):
            peer.registry.register_source(module, location="m.xq")
        query = """
        import module namespace m = "urn:m" at "m.xq";
        execute at {"xrpc://b"} { m:middle() }
        """
        result = a.execute_query(query)
        assert values(result.sequence) == ["via-b:from-c"]

    def test_nested_participants_piggybacked(self, network):
        module = """
        module namespace m = "urn:m";
        declare function m:leaf() as xs:string { "x" };
        declare function m:middle() as xs:string
        { execute at {"xrpc://c"} { m:leaf() } };
        """
        a = XRPCPeer("a", network)
        b = XRPCPeer("b", network)
        c = XRPCPeer("c", network)
        for peer in (a, b, c):
            peer.registry.register_source(module, location="m.xq")
        query = """
        import module namespace m = "urn:m" at "m.xq";
        execute at {"xrpc://b"} { m:middle() }
        """
        result = a.execute_query(query)
        # The origin learns about c even though it only called b.
        assert set(result.participants) == {"b", "c"}


class TestDataShipping:
    def test_remote_doc_fetch(self, network):
        a = XRPCPeer("a", network)
        b = XRPCPeer("b", network)
        b.store.register("data.xml", "<data><v>7</v></data>")
        result = a.execute_query("doc('xrpc://b/data.xml')//v")
        assert strings(result.sequence) == ["7"]

    def test_remote_doc_cached_per_query(self, network):
        a = XRPCPeer("a", network)
        b = XRPCPeer("b", network)
        b.store.register("data.xml", "<data><v>7</v></data>")
        network.reset_stats()
        query = "(count(doc('xrpc://b/data.xml')//v), count(doc('xrpc://b/data.xml')//v))"
        result = a.execute_query(query)
        assert values(result.sequence) == [1, 1]
        # Shipped once despite two doc() calls (per-session cache);
        # bulk phase1+phase3 must not double-ship either.
        assert network.messages_sent <= 2


class TestEngineProfiles:
    def test_tree_engine_never_bulks(self, network):
        p0 = XRPCPeer("a", network, engine=TreeEngine())
        p1 = XRPCPeer("b", network)
        for peer in (p0, p1):
            peer.registry.register_source(FILM_MODULE, location="f.xq")
        p1.store.register("filmDB.xml", FILMS_Y)
        query = """
        import module namespace f="films" at "f.xq";
        for $a in ("Sean Connery", "Gerard Depardieu")
        return execute at {"xrpc://b"} { f:filmsByActor($a) }
        """
        result = p0.execute_query(query)
        assert not result.used_bulk_rpc
        assert result.messages_sent == 2

    def test_monet_function_cache_hits(self, network):
        p0 = XRPCPeer("a", network)
        p1 = XRPCPeer("b", network, engine=MonetEngine(function_cache=True))
        for peer in (p0, p1):
            peer.registry.register_source(FILM_MODULE, location="f.xq")
        p1.store.register("filmDB.xml", FILMS_Y)
        key = ("films", "filmsByActor", 1)
        assert not p1.engine.function_cache_lookup(key)
        query = """
        import module namespace f="films" at "f.xq";
        execute at {"xrpc://b"} { f:filmsByActor("Sean Connery") }
        """
        p0.execute_query(query)
        assert p1.engine.function_cache_lookup(key)
