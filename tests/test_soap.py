"""SOAP XRPC protocol tests: marshaling, messages, bulk RPC, faults."""

import pytest

from repro.errors import XRPCFault
from repro.soap import (
    QueryID,
    XRPCFaultMessage,
    XRPCRequest,
    XRPCResponse,
    build_fault,
    build_request,
    build_response,
    n2s,
    parse_message,
    parse_request,
    parse_response,
    s2n,
)
from repro.xdm import deep_equal, double, integer, string, untyped, xs
from repro.xdm.atomic import AtomicValue
from repro.xdm.nodes import AttributeNode, NodeFactory
from repro.xml import parse_document, parse_fragment


class TestMarshaling:
    def test_atomic_round_trip(self):
        original = [string("abc"), integer(42)]
        assert n2s(s2n(original)) == original

    def test_heterogeneous_sequence(self):
        # The paper's example: integer 2 and double 3.1.
        original = [integer(2), double(3.1)]
        result = n2s(s2n(original))
        assert result[0].type is xs.integer
        assert result[1].type is xs.double
        assert result == original

    def test_empty_sequence(self):
        assert n2s(s2n([])) == []

    def test_untyped_atomic(self):
        [value] = n2s(s2n([untyped("x")]))
        assert value.type is xs.untypedAtomic

    def test_boolean_and_decimal(self):
        from decimal import Decimal
        original = [AtomicValue(True, xs.boolean),
                    AtomicValue(Decimal("2.50"), xs.decimal)]
        result = n2s(s2n(original))
        assert result[0].value is True
        assert result[1].value == Decimal("2.5")

    def test_element_by_value(self):
        element = parse_fragment("<name>The Rock</name>")
        [copy] = n2s(s2n([element]))
        assert copy is not element
        assert copy.parent is None            # standalone fragment
        assert deep_equal([copy], [element])

    def test_upward_axes_empty_after_round_trip(self):
        doc = parse_document("<films><film><name>X</name></film></films>")
        name = doc.root_element.children[0].children[0]
        [copy] = n2s(s2n([name]))
        assert list(copy.ancestors()) == []
        assert copy.root() is copy

    def test_descendant_relationship_destroyed(self):
        # Paper section 2.2: two nodes in a descendant-or-self relation
        # lose the relation when marshaled separately.
        doc = parse_document("<a><b/></a>")
        a = doc.root_element
        b = a.children[0]
        copy_a, copy_b = n2s(s2n([a, b]))
        assert copy_b.parent is None
        assert copy_b not in list(copy_a.descendants())

    def test_attribute_node(self):
        factory = NodeFactory()
        attribute = factory.attribute("x", "y")
        [copy] = n2s(s2n([attribute]))
        assert isinstance(copy, AttributeNode)
        assert copy.name == "x"
        assert copy.value == "y"

    def test_text_comment_pi(self):
        factory = NodeFactory()
        items = [
            factory.text("hello"),
            factory.comment("note"),
            factory.processing_instruction("t", "d"),
        ]
        result = n2s(s2n(items))
        assert [n.kind for n in result] == \
            ["text", "comment", "processing-instruction"]
        assert result[0].string_value() == "hello"
        assert result[2].target == "t"

    def test_document_node(self):
        doc = parse_document("<r><c/></r>")
        [copy] = n2s(s2n([doc]))
        assert copy.kind == "document"
        assert copy.root_element.name == "r"

    def test_special_characters_escaped(self):
        original = [string("<&>\"'")]
        from repro.xml.serializer import serialize
        text = serialize(s2n(original))
        reparsed = parse_fragment(text)
        assert n2s(reparsed) == original

    def test_n2s_adopts_parsed_fragment_without_copy(self):
        """Single-pass unmarshal: the returned element IS the parsed
        fragment, detached from its holder (no second deep copy)."""
        text = ('<xrpc:sequence xmlns:xrpc="http://monetdb.cwi.nl/XQuery">'
                '<xrpc:element><name>X</name></xrpc:element>'
                '</xrpc:sequence>')
        wrapper = parse_fragment(text)
        holder = wrapper.child_elements()[0]
        parsed_child = holder.child_elements()[0]
        [value] = n2s(wrapper)
        assert value is parsed_child          # adopted, not copied
        assert value.parent is None           # standalone fragment
        assert list(value.ancestors()) == []
        assert parsed_child not in holder.children

    def test_streaming_writer_round_trips_like_s2n(self):
        """MarshalWriter.sequence emits s2n-equivalent wire XML: parsed
        back through n2s it yields the same sequence, typed values and
        all, without ever building holder trees."""
        from repro.soap import MarshalWriter

        factory = NodeFactory()
        items = [
            integer(7),
            string("a & <b>"),
            parse_fragment('<a xmlns:p="urn:p"><p:b x="1">t</p:b></a>'),
            factory.attribute("k", 'v"q'),
            factory.text("plain"),
            factory.comment("note"),
            factory.processing_instruction("t", "d"),
        ]
        writer = MarshalWriter()
        # Prefixes the SOAP envelope normally declares.
        writer.start("wrap", declarations={
            "xrpc": "http://monetdb.cwi.nl/XQuery",
            "xsi": "http://www.w3.org/2001/XMLSchema-instance",
        })
        writer.sequence(items)
        writer.end()
        sequence_el = parse_fragment(writer.getvalue()).child_elements()[0]
        round_tripped = n2s(sequence_el)
        assert deep_equal(round_tripped, items)
        assert round_tripped[0].type is xs.integer
        assert round_tripped[3].name == "k" and round_tripped[3].value == 'v"q'

    def test_marshal_fingerprint_discriminates(self):
        from repro.soap import marshal_fingerprint

        assert marshal_fingerprint([[integer(1)], [string("x")]]) == \
            marshal_fingerprint([[integer(1)], [string("x")]])
        assert marshal_fingerprint([[integer(1)]]) != \
            marshal_fingerprint([[integer(2)]])
        assert marshal_fingerprint([[integer(1)], []]) != \
            marshal_fingerprint([[], [integer(1)]])

    def test_unknown_type_degrades_to_untyped(self):
        text = ('<xrpc:sequence xmlns:xrpc="http://monetdb.cwi.nl/XQuery" '
                'xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">'
                '<xrpc:atomic-value xsi:type="my:custom">v</xrpc:atomic-value>'
                '</xrpc:sequence>')
        [value] = n2s(parse_fragment(text))
        assert value.type is xs.untypedAtomic
        assert value.value == "v"


class TestRequestMessages:
    def _paper_request(self) -> XRPCRequest:
        request = XRPCRequest(
            module="films", method="filmsByActor", arity=1,
            location="http://x.example.org/film.xq")
        request.add_call([[string("Sean Connery")]])
        return request

    def test_paper_example_round_trip(self):
        text = build_request(self._paper_request())
        parsed = parse_request(text)
        assert parsed.module == "films"
        assert parsed.method == "filmsByActor"
        assert parsed.arity == 1
        assert parsed.location == "http://x.example.org/film.xq"
        assert len(parsed.calls) == 1
        [[param]] = parsed.calls
        assert param == [string("Sean Connery")]

    def test_message_shape_matches_paper(self):
        text = build_request(self._paper_request())
        doc = parse_document(text)
        envelope = doc.root_element
        assert envelope.local_name == "Envelope"
        body = envelope.children[0]
        request = body.children[0]
        assert request.get_attribute("module").value == "films"
        call = request.children[0]
        assert call.local_name == "call"
        sequence = call.children[0]
        assert sequence.local_name == "sequence"
        atomic = sequence.children[0]
        assert atomic.get_attribute("xsi:type").value == "xs:string"
        assert atomic.string_value() == "Sean Connery"

    def test_bulk_request(self):
        # Section 3.2: two calls in one message (Julie Andrews, Sean Connery).
        request = XRPCRequest(module="films", method="filmsByActor", arity=1,
                              location="http://x.example.org/film.xq")
        request.add_call([[string("Julie Andrews")]])
        request.add_call([[string("Sean Connery")]])
        parsed = parse_request(build_request(request))
        assert parsed.is_bulk
        assert len(parsed.calls) == 2
        assert parsed.calls[0][0] == [string("Julie Andrews")]
        assert parsed.calls[1][0] == [string("Sean Connery")]

    def test_query_id_round_trip(self):
        request = self._paper_request()
        request.query_id = QueryID(host="p0.example.org", timestamp=123.5,
                                   timeout=30)
        parsed = parse_request(build_request(request))
        assert parsed.query_id is not None
        assert parsed.query_id.host == "p0.example.org"
        assert parsed.query_id.timestamp == 123.5
        assert parsed.query_id.timeout == 30

    def test_updating_flag(self):
        request = self._paper_request()
        request.updating = True
        assert parse_request(build_request(request)).updating

    def test_arity_mismatch_rejected(self):
        request = XRPCRequest(module="m", method="f", arity=2)
        with pytest.raises(XRPCFault):
            request.add_call([[string("only-one")]])

    def test_multi_parameter_call(self):
        request = XRPCRequest(module="m", method="getPerson", arity=2)
        request.add_call([[string("auctions.xml")], [string("person0")]])
        parsed = parse_request(build_request(request))
        assert len(parsed.calls[0]) == 2


class TestResponseMessages:
    def test_response_round_trip(self):
        rock = parse_fragment("<name>The Rock</name>")
        goldfinger = parse_fragment("<name>Goldfinger</name>")
        response = XRPCResponse(module="films", method="filmsByActor",
                                results=[[rock, goldfinger]])
        parsed = parse_response(build_response(response))
        assert parsed.module == "films"
        assert len(parsed.results) == 1
        assert [n.string_value() for n in parsed.results[0]] == \
            ["The Rock", "Goldfinger"]

    def test_bulk_response_one_sequence_per_call(self):
        response = XRPCResponse(module="m", method="f",
                                results=[[integer(1)], [], [integer(3)]])
        parsed = parse_response(build_response(response))
        assert parsed.results == [[integer(1)], [], [integer(3)]]

    def test_participants_piggyback(self):
        response = XRPCResponse(module="m", method="f", results=[[]])
        response.participating_peers = ["xrpc://b", "xrpc://c"]
        parsed = parse_response(build_response(response))
        assert parsed.participating_peers == ["xrpc://b", "xrpc://c"]


class TestFaults:
    def test_fault_round_trip(self):
        text = build_fault("env:Sender", "could not load module!")
        message = parse_message(text)
        assert isinstance(message, XRPCFaultMessage)
        assert message.fault_code == "env:Sender"
        assert message.reason == "could not load module!"

    def test_parse_response_raises_on_fault(self):
        text = build_fault("env:Sender", "boom")
        with pytest.raises(XRPCFault) as info:
            parse_response(text)
        assert "boom" in str(info.value)

    def test_non_soap_rejected(self):
        with pytest.raises(XRPCFault):
            parse_message("<not-soap/>")
