"""XQuery evaluator tests: literals, operators, FLWOR, conditionals."""

from decimal import Decimal

import pytest

from repro.errors import DynamicError, StaticError
from tests.helpers import run, values


class TestLiterals:
    def test_integer(self):
        assert values(run("42")) == [42]

    def test_decimal(self):
        assert values(run("3.14")) == [Decimal("3.14")]

    def test_double(self):
        assert values(run("1.5e2")) == [150.0]

    def test_string(self):
        assert values(run("'hello'")) == ["hello"]

    def test_string_doubled_quote_escape(self):
        assert values(run('"say ""hi"""')) == ['say "hi"']

    def test_empty_sequence(self):
        assert run("()") == []

    def test_comma_sequence(self):
        assert values(run("1, 2, 'x'")) == [1, 2, "x"]

    def test_nested_sequences_flatten(self):
        assert values(run("(1, (2, 3), ())")) == [1, 2, 3]

    def test_comment_ignored(self):
        assert values(run("1 (: comment (: nested :) :) + 2")) == [3]


class TestArithmetic:
    @pytest.mark.parametrize("query,expected", [
        ("1 + 2", 3),
        ("5 - 3", 2),
        ("4 * 3", 12),
        ("7 idiv 2", 3),
        ("7 mod 2", 1),
        ("-5 + 2", -3),
        ("2 + 3 * 4", 14),
        ("(2 + 3) * 4", 20),
    ])
    def test_integer_ops(self, query, expected):
        assert values(run(query)) == [expected]

    def test_div_returns_decimal(self):
        [result] = run("10 div 4")
        assert result.value == Decimal("2.5")

    def test_double_propagates(self):
        assert values(run("1.0e0 + 1")) == [2.0]

    def test_division_by_zero_integer(self):
        with pytest.raises(DynamicError):
            run("1 div 0")

    def test_division_by_zero_double_is_inf(self):
        [result] = run("1e0 div 0")
        assert result.value == float("inf")

    def test_empty_operand_yields_empty(self):
        assert run("() + 1") == []

    def test_untyped_promotes_to_double(self):
        result = run("<a>3</a> + 1")
        assert values(result) == [4.0]


class TestComparisons:
    @pytest.mark.parametrize("query,expected", [
        ("1 = 1", True),
        ("1 != 1", False),
        ("1 < 2", True),
        ("2 <= 2", True),
        ("'a' = 'a'", True),
        ("1 eq 1", True),
        ("2 gt 1", True),
        ("'abc' lt 'abd'", True),
    ])
    def test_simple(self, query, expected):
        assert values(run(query)) == [expected]

    def test_general_comparison_existential(self):
        assert values(run("(1, 2, 3) = 2")) == [True]
        assert values(run("(1, 2, 3) = 9")) == [False]

    def test_value_comparison_empty_is_empty(self):
        assert run("() eq 1") == []

    def test_node_is(self):
        assert values(run("let $a := <x/> return $a is $a")) == [True]
        assert values(run("<x/> is <x/>")) == [False]

    def test_node_order(self):
        query = "let $d := <a><b/><c/></a> return ($d/b << $d/c)"
        assert values(run(query)) == [True]


class TestLogic:
    @pytest.mark.parametrize("query,expected", [
        ("true() and true()", True),
        ("true() and false()", False),
        ("false() or true()", True),
        ("not(false())", True),
        ("1 and 'x'", True),
        ("0 or ''", False),
    ])
    def test_boolean_ops(self, query, expected):
        assert values(run(query)) == [expected]

    def test_if_then_else(self):
        assert values(run("if (1 < 2) then 'yes' else 'no'")) == ["yes"]
        assert values(run("if (()) then 'yes' else 'no'")) == ["no"]


class TestRange:
    def test_simple_range(self):
        assert values(run("1 to 4")) == [1, 2, 3, 4]

    def test_degenerate_range(self):
        assert values(run("3 to 3")) == [3]

    def test_backwards_range_empty(self):
        assert run("3 to 1") == []

    def test_range_with_variable(self):
        assert values(run("for $i in (1 to $x) return $i",
                          variables={"x": run("3")})) == [1, 2, 3]


class TestFLWOR:
    def test_for_return(self):
        assert values(run("for $x in (1, 2, 3) return $x * 2")) == [2, 4, 6]

    def test_let(self):
        assert values(run("let $x := 5 return $x + 1")) == [6]

    def test_nested_for(self):
        query = "for $x in (10, 20) return for $y in (1, 2) return $x + $y"
        assert values(run(query)) == [11, 12, 21, 22]

    def test_for_with_position(self):
        query = "for $x at $i in ('a', 'b', 'c') return $i"
        assert values(run(query)) == [1, 2, 3]

    def test_where(self):
        query = "for $x in (1 to 10) where $x mod 2 = 0 return $x"
        assert values(run(query)) == [2, 4, 6, 8, 10]

    def test_order_by(self):
        query = "for $x in (3, 1, 2) order by $x return $x"
        assert values(run(query)) == [1, 2, 3]

    def test_order_by_descending(self):
        query = "for $x in (3, 1, 2) order by $x descending return $x"
        assert values(run(query)) == [3, 2, 1]

    def test_order_by_string_key(self):
        query = "for $x in ('banana', 'apple') order by $x return $x"
        assert values(run(query)) == ["apple", "banana"]

    def test_multiple_for_clauses_cartesian(self):
        query = "for $x in (1, 2), $y in (10, 20) return $x + $y"
        assert values(run(query)) == [11, 21, 12, 22]

    def test_let_sequence_binding(self):
        query = "let $s := (1, 2, 3) return count($s)"
        assert values(run(query)) == [3]

    def test_paper_q5_loop_lifting_example(self):
        # Section 3.1: $z is ($x, $y) in all four iterations.
        query = ("for $x in (10, 20) return for $y in (100, 200) "
                 "let $z := ($x, $y) return count($z)")
        assert values(run(query)) == [2, 2, 2, 2]


class TestQuantified:
    def test_some(self):
        assert values(run("some $x in (1, 2, 3) satisfies $x > 2")) == [True]
        assert values(run("some $x in (1, 2, 3) satisfies $x > 5")) == [False]

    def test_every(self):
        assert values(run("every $x in (1, 2, 3) satisfies $x > 0")) == [True]
        assert values(run("every $x in (1, 2, 3) satisfies $x > 1")) == [False]

    def test_multiple_bindings(self):
        query = "some $x in (1, 2), $y in (2, 3) satisfies $x = $y"
        assert values(run(query)) == [True]


class TestTypeOperators:
    def test_cast(self):
        assert values(run("'42' cast as xs:integer")) == [42]

    def test_castable(self):
        assert values(run("'42' castable as xs:integer")) == [True]
        assert values(run("'x' castable as xs:integer")) == [False]

    def test_instance_of(self):
        assert values(run("1 instance of xs:integer")) == [True]
        assert values(run("1 instance of xs:string")) == [False]
        assert values(run("(1, 2) instance of xs:integer*")) == [True]
        assert values(run("() instance of empty-sequence()")) == [True]
        assert values(run("<a/> instance of element()")) == [True]

    def test_treat_as(self):
        assert values(run("1 treat as xs:integer")) == [1]
        with pytest.raises(DynamicError):
            run("'x' treat as xs:integer")

    def test_constructor_function(self):
        assert values(run("xs:integer('17')")) == [17]
        assert values(run("xs:string(3.0e0)")) == ["3"]

    def test_typeswitch(self):
        query = """
        typeswitch (<a/>)
          case element() return 'element'
          case xs:integer return 'int'
          default return 'other'
        """
        assert values(run(query)) == ["element"]

    def test_typeswitch_with_variable(self):
        query = """
        typeswitch (42)
          case $i as xs:integer return $i + 1
          default return 0
        """
        assert values(run(query)) == [43]

    def test_typeswitch_default(self):
        query = """
        typeswitch ('s')
          case xs:integer return 'int'
          default $v return concat('got ', $v)
        """
        assert values(run(query)) == ["got s"]


class TestErrors:
    def test_unknown_function(self):
        with pytest.raises(StaticError) as info:
            run("no-such-function(1)")
        assert info.value.code == "XPST0017"

    def test_unbound_variable(self):
        with pytest.raises(DynamicError):
            run("$nope")

    def test_syntax_error(self):
        with pytest.raises(StaticError):
            run("1 +")

    def test_fn_error(self):
        with pytest.raises(DynamicError):
            run("error('X', 'boom')")
