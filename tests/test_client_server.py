"""Unit tests for ClientSession, XRPCServer and the coordinator messages."""

import pytest

from repro.errors import XRPCFault
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.rpc.client import ClientSession
from repro.soap import parse_message
from repro.soap.messages import (
    QueryID,
    TxnCommand,
    TxnResult,
    build_txn_command,
    build_txn_result,
)
from repro.xdm.atomic import integer, string

MODULE = """
module namespace m = "urn:m";
declare function m:add($x as xs:integer, $y as xs:integer) as xs:integer
{ $x + $y };
declare function m:first($s as item()*) as item()? { $s[1] };
"""


@pytest.fixture
def site():
    network = SimulatedNetwork()
    origin = XRPCPeer("origin", network)
    server = XRPCPeer("served", network)
    for peer in (origin, server):
        peer.registry.register_source(MODULE, location="m.xq")
    return network, origin, server


class TestClientSession:
    def test_single_call(self, site):
        network, origin, server = site
        session = ClientSession(network, origin="origin")
        [result] = session.call("served", "urn:m", "m.xq", "add", 2,
                                [[[integer(1)], [integer(2)]]])
        assert result == [integer(3)]

    def test_bulk_call_result_alignment(self, site):
        network, origin, server = site
        session = ClientSession(network, origin="origin")
        calls = [[[integer(i)], [integer(10)]] for i in range(5)]
        results = session.call("served", "urn:m", "m.xq", "add", 2, calls)
        assert results == [[integer(i + 10)] for i in range(5)]

    def test_sequence_parameter(self, site):
        network, origin, server = site
        session = ClientSession(network, origin="origin")
        [result] = session.call(
            "served", "urn:m", "m.xq", "first", 1,
            [[[string("a"), string("b"), string("c")]]])
        assert result == [string("a")]

    def test_empty_sequence_parameter(self, site):
        network, origin, server = site
        session = ClientSession(network, origin="origin")
        [result] = session.call("served", "urn:m", "m.xq", "first", 1, [[[]]])
        assert result == []

    def test_message_counters(self, site):
        network, origin, server = site
        session = ClientSession(network, origin="origin")
        session.call("served", "urn:m", "m.xq", "add", 2,
                     [[[integer(1)], [integer(1)]],
                      [[integer(2)], [integer(2)]]])
        assert session.messages_sent == 1
        assert session.calls_shipped == 2

    def test_participants_exclude_origin(self, site):
        network, origin, server = site
        session = ClientSession(network, origin="origin")
        session.call("served", "urn:m", "m.xq", "add", 2,
                     [[[integer(1)], [integer(1)]]])
        assert session.participants == ["served"]

    def test_fault_raises(self, site):
        network, origin, server = site
        session = ClientSession(network, origin="origin")
        with pytest.raises(XRPCFault):
            session.call("served", "urn:nope", None, "f", 0, [[]])

    def test_wrong_arity_faults(self, site):
        network, origin, server = site
        session = ClientSession(network, origin="origin")
        with pytest.raises(XRPCFault):
            session.call("served", "urn:m", "m.xq", "add", 1, [[[integer(1)]]])

    def test_updating_bulk_result_count_mismatch_faults(self):
        """An updating bulk response with a *wrong* non-zero result count
        must fault, symmetric with the read-only path."""
        from repro.soap.messages import XRPCResponse, build_response

        network = SimulatedNetwork()
        network.register_peer("srv", lambda payload: build_response(
            XRPCResponse(module="urn:m", method="f", results=[[]])))
        session = ClientSession(network, origin="origin")
        with pytest.raises(XRPCFault, match="1 results"):
            session.call("srv", "urn:m", None, "f", 0, [[], []],
                         updating=True)

    def test_updating_bulk_empty_results_accepted(self):
        """An updating response may omit result sequences altogether."""
        from repro.soap.messages import XRPCResponse, build_response

        network = SimulatedNetwork()
        network.register_peer("srv", lambda payload: build_response(
            XRPCResponse(module="urn:m", method="f", results=[])))
        session = ClientSession(network, origin="origin")
        results = session.call("srv", "urn:m", None, "f", 0, [[], []],
                               updating=True)
        assert results == [[], []]


class TestServerBehaviour:
    def test_malformed_message_returns_fault(self, site):
        network, origin, server = site
        raw = server.server.handle("this is not xml")
        message = parse_message(raw)
        from repro.soap.messages import XRPCFaultMessage
        assert isinstance(message, XRPCFaultMessage)

    def test_response_is_valid_soap(self, site):
        network, origin, server = site
        from repro.soap import XRPCRequest, build_request, parse_response
        request = XRPCRequest(module="urn:m", method="add", arity=2,
                              location="m.xq")
        request.add_call([[integer(20)], [integer(22)]])
        response = parse_response(server.server.handle(build_request(request)))
        assert response.module == "urn:m"
        assert response.results == [[integer(42)]]
        assert response.participating_peers[0] == "served"

    def test_request_counters(self, site):
        network, origin, server = site
        session = ClientSession(network, origin="origin")
        session.call("served", "urn:m", "m.xq", "add", 2,
                     [[[integer(1)], [integer(1)]]] * 3)
        assert server.server.requests_handled == 1
        assert server.server.calls_handled == 3


class TestTxnMessages:
    def test_txn_command_round_trip(self):
        command = TxnCommand("prepare", QueryID("h", 12.5, 30))
        parsed = parse_message(build_txn_command(command))
        assert isinstance(parsed, TxnCommand)
        assert parsed.kind == "prepare"
        assert parsed.query_id.key == ("h", 12.5)
        assert parsed.query_id.timeout == 30

    def test_txn_result_round_trip(self):
        result = TxnResult(kind="commit", ok=False, detail="conflict on x")
        parsed = parse_message(build_txn_result(result))
        assert isinstance(parsed, TxnResult)
        assert parsed.kind == "commit"
        assert parsed.ok is False
        assert parsed.detail == "conflict on x"

    def test_server_answers_txn_commands(self, site):
        network, origin, server = site
        query_id = QueryID("origin", 1.0, 60)
        # Prepare with no active state -> polite negative vote.
        raw = network.send("served",
                           build_txn_command(TxnCommand("prepare", query_id)))
        reply = parse_message(raw)
        assert isinstance(reply, TxnResult)
        assert reply.ok is False

    def test_rollback_unknown_txn_is_noop_success(self, site):
        network, origin, server = site
        query_id = QueryID("origin", 1.0, 60)
        raw = network.send("served",
                           build_txn_command(TxnCommand("rollback", query_id)))
        reply = parse_message(raw)
        assert isinstance(reply, TxnResult)
        assert reply.ok is True
