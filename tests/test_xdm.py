"""Unit tests for the XDM layer: atomic values, nodes, sequences."""

from decimal import Decimal

import pytest

from repro.errors import DynamicError, TypeError_
from repro.xdm import (
    AtomicValue,
    NodeFactory,
    atomize,
    boolean,
    copy_tree,
    deep_equal,
    double,
    effective_boolean_value,
    integer,
    string,
    untyped,
    xs,
)
from repro.xdm.atomic import cast, general_compare_pair, value_compare
from repro.xdm.sequence import document_order_sort
from repro.xml import parse_document


class TestAtomicValues:
    def test_string_value_integer(self):
        assert integer(42).string_value() == "42"

    def test_string_value_boolean(self):
        assert boolean(True).string_value() == "true"
        assert boolean(False).string_value() == "false"

    def test_string_value_double_integral(self):
        assert double(3.0).string_value() == "3"

    def test_string_value_double_fraction(self):
        assert double(3.1).string_value() == "3.1"

    def test_string_value_decimal_trailing_zeros(self):
        assert AtomicValue(Decimal("2.50"), xs.decimal).string_value() == "2.5"

    def test_numeric_equality_across_types(self):
        assert integer(2) == double(2.0)

    def test_inf_lexical(self):
        import math
        assert double(math.inf).string_value() == "INF"
        assert double(-math.inf).string_value() == "-INF"


class TestCasting:
    def test_string_to_integer(self):
        assert cast(string("17"), xs.integer).value == 17

    def test_untyped_to_double(self):
        assert cast(untyped("2.5"), xs.double).value == 2.5

    def test_integer_to_string(self):
        assert cast(integer(5), xs.string).value == "5"

    def test_boolean_from_lexical(self):
        assert cast(string("true"), xs.boolean).value is True
        assert cast(string("0"), xs.boolean).value is False

    def test_numeric_to_boolean(self):
        assert cast(integer(0), xs.boolean).value is False
        assert cast(double(0.1), xs.boolean).value is True

    def test_invalid_lexical_raises_forg0001(self):
        with pytest.raises(DynamicError) as info:
            cast(string("abc"), xs.integer)
        assert info.value.code == "FORG0001"

    def test_identity_cast(self):
        value = string("x")
        assert cast(value, xs.string) is value

    def test_upcast_within_hierarchy(self):
        value = cast(integer(7), xs.decimal)
        assert value.type is xs.decimal
        assert value.value == 7


class TestComparisons:
    def test_value_compare_numeric(self):
        assert value_compare(integer(1), "lt", double(1.5))
        assert value_compare(integer(2), "ge", integer(2))

    def test_value_compare_untyped_as_string(self):
        # Value comparison casts untypedAtomic to string: "10" < "9".
        assert value_compare(untyped("10"), "lt", untyped("9"))

    def test_general_compare_untyped_vs_numeric(self):
        # General comparison casts untyped to double: 10 > 9.
        assert general_compare_pair(untyped("10"), "gt", integer(9))

    def test_general_compare_untyped_pair_as_strings(self):
        assert general_compare_pair(untyped("a"), "eq", untyped("a"))

    def test_incomparable_types_raise(self):
        with pytest.raises(TypeError_):
            value_compare(integer(1), "eq", boolean(True))

    def test_nan_compares_false(self):
        assert not value_compare(double(float("nan")), "eq", double(1.0))
        assert not value_compare(double(float("nan")), "lt", double(1.0))


class TestEffectiveBooleanValue:
    def test_empty_is_false(self):
        assert effective_boolean_value([]) is False

    def test_node_first_is_true(self):
        doc = parse_document("<a/>")
        assert effective_boolean_value([doc.root_element]) is True

    def test_single_boolean(self):
        assert effective_boolean_value([boolean(False)]) is False

    def test_zero_is_false(self):
        assert effective_boolean_value([integer(0)]) is False

    def test_nonempty_string_is_true(self):
        assert effective_boolean_value([string("x")]) is True

    def test_multiple_atomics_raise(self):
        with pytest.raises(DynamicError):
            effective_boolean_value([integer(1), integer(2)])


class TestNodes:
    def test_axes(self):
        doc = parse_document("<a><b/><c><d/></c><e/></a>")
        a = doc.root_element
        b, c, e = a.children
        d = c.children[0]
        assert list(d.ancestors()) == [c, a, doc]
        assert list(c.following_siblings()) == [e]
        assert list(c.preceding_siblings()) == [b]
        assert list(b.following()) == [c, d, e]
        assert list(e.preceding()) == [d, c, b]

    def test_typed_value_is_untyped_atomic(self):
        doc = parse_document("<a>42</a>")
        [value] = doc.root_element.typed_value()
        assert value.type is xs.untypedAtomic
        assert value.value == "42"

    def test_atomize_mixed_sequence(self):
        doc = parse_document("<a>x</a>")
        values = atomize([doc.root_element, integer(1)])
        assert values[0].value == "x"
        assert values[1].value == 1

    def test_copy_tree_fresh_identity(self):
        doc = parse_document("<a><b>t</b></a>")
        b = doc.root_element.children[0]
        copy = copy_tree(b)
        assert copy is not b
        assert copy.parent is None
        assert copy.order_key[0] != b.order_key[0]
        assert deep_equal([copy], [b])

    def test_document_order_sort_dedups(self):
        doc = parse_document("<a><b/><c/></a>")
        b, c = doc.root_element.children
        assert document_order_sort([c, b, c, b]) == [b, c]


class TestDeepEqual:
    def test_equal_trees(self):
        x = parse_document("<a><b>1</b></a>")
        y = parse_document("<a><b>1</b></a>")
        assert deep_equal([x], [y])

    def test_attribute_order_irrelevant(self):
        x = parse_document('<a p="1" q="2"/>')
        y = parse_document('<a q="2" p="1"/>')
        assert deep_equal([x], [y])

    def test_different_text_not_equal(self):
        x = parse_document("<a>1</a>")
        y = parse_document("<a>2</a>")
        assert not deep_equal([x], [y])

    def test_atomics(self):
        assert deep_equal([integer(1), string("x")], [integer(1), string("x")])
        assert not deep_equal([integer(1)], [integer(1), integer(2)])

    def test_numeric_cross_type(self):
        assert deep_equal([integer(3)], [double(3.0)])


class TestFactory:
    def test_manual_tree_construction(self):
        factory = NodeFactory()
        root = factory.element("films")
        film = factory.element("film")
        film.append(factory.text("The Rock"))
        root.append(film)
        assert root.string_value() == "The Rock"
        assert film.parent is root
