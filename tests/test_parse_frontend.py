"""Differential suite: expat vs pure-python parse backends.

The expat frontend's contract is byte-identical trees — same node kinds
in the same order, same names/values, same namespace resolution, and
identical pre/size/level planes and gapped order keys.  Every test here
parses the same input through both backends and compares full tree
encodings, plus property-based round-trips (parse -> serialize ->
parse) across both.
"""

import string as stringmod

import pytest
from hypothesis import given, settings, strategies as st

from repro.session import Database
from repro.soap.messages import XRPCRequest, build_request, parse_request
from repro.workloads.xmark import (
    XMarkConfig,
    generate_auctions,
    generate_persons,
)
from repro.xdm.atomic import integer, string
from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    KEY_STRIDE,
    ProcessingInstructionNode,
    TextNode,
)
from repro.xml.expat_parser import ExpatUnsupported, parse_document_expat
from repro.xml.parser import (
    BACKENDS,
    XMLSyntaxError,
    decode_xml_bytes,
    default_backend,
    parse_document,
    parse_document_python,
)
from repro.xml.serializer import escape_attribute, escape_text, serialize
from repro.xml.stats import PARSE_STATS


def rows(document):
    """Flatten a tree into comparable row dicts (iterative: deep docs)."""
    out = []
    stack = [(document, None)]
    while stack:
        node, parent = stack.pop()
        row = {
            "kind": type(node).__name__,
            "serial": node.order_key[1],
            "size": node.size,
            "level": node.level,
            "parent": None if parent is None else parent.order_key[1],
        }
        if isinstance(node, ElementNode):
            row.update(name=node.name, ns=node.ns_uri,
                       local=node.local_name,
                       decls=dict(node.namespace_declarations))
            for attribute in node.attributes:
                row.setdefault("attrs", []).append(
                    (attribute.order_key[1], attribute.name,
                     attribute.value, attribute.ns_uri, attribute.level,
                     attribute.local_name))
            stack.extend((c, node) for c in reversed(node.children))
        elif isinstance(node, (TextNode, CommentNode)):
            row["content"] = node.content
        elif isinstance(node, ProcessingInstructionNode):
            row["target"] = node.target
            row["content"] = node.content
        elif isinstance(node, DocumentNode):
            row["uri"] = node.uri
            stack.extend((c, node) for c in reversed(node.children))
        out.append(row)
    return out


def assert_identical(text, stride=None):
    py = parse_document(text, uri="u", stride=stride, backend="python")
    ex = parse_document(text, uri="u", stride=stride, backend="expat")
    assert rows(py) == rows(ex)
    return py, ex


XMARK = XMarkConfig(persons=25, closed_auctions=50, open_auctions=10)


class TestIdenticalTrees:
    def test_xmark_auctions(self):
        assert_identical(generate_auctions(XMARK))

    def test_xmark_persons(self):
        assert_identical(generate_persons(XMARK))

    def test_dense_stride_ablation(self):
        assert_identical(generate_auctions(XMARK), stride=1)

    def test_gapped_order_keys(self):
        _, doc = assert_identical("<r><a x='1'/><b>t</b></r>")
        serials = [n.order_key[1] for n in doc.descendants()]
        assert all(s % KEY_STRIDE == 0 for s in serials)
        assert serials == sorted(serials)

    def test_namespaces(self):
        assert_identical(
            '<r xmlns="urn:d" xmlns:a="urn:a" id="r1">'
            '<a:item a:k="v" plain="p"/>'
            '<e2 xmlns=""><inner/></e2>'
            '<deep xmlns:b="urn:b"><b:x b:y="z"/></deep></r>')

    def test_namespace_rescoping(self):
        assert_identical(
            '<r xmlns:p="urn:1"><p:a><b xmlns:p="urn:2"><p:c/></b>'
            '<p:d/></p:a><e/></r>')

    def test_xml_prefix_predeclared(self):
        assert_identical('<r xml:lang="en"><xml:a/></r>')

    def test_cdata_pi_comments(self):
        assert_identical(
            "<?xml version='1.0'?><!-- head --><?style sheet ?>"
            "<r>a<![CDATA[<raw> & stuff]]>b<!-- in -->"
            "<?pi data?></r><!-- tail -->")

    def test_empty_cdata_yields_text_node(self):
        py, ex = assert_identical("<r><![CDATA[]]></r>")
        assert isinstance(ex.root_element.children[0], TextNode)
        assert ex.root_element.children[0].content == ""

    def test_entity_references(self):
        assert_identical(
            "<r a='&quot;&apos;'>&amp;&lt;&gt; &#65;&#x42;</r>")

    def test_attribute_whitespace_normalized(self):
        py, ex = assert_identical('<r a="x\ny\tz" b="&#10;&#9;"/>')
        a, b = ex.root_element.attributes
        assert a.value == "x y z"      # literal whitespace -> space
        assert b.value == "\n\t"       # character references exempt

    def test_line_ending_normalization(self):
        assert_identical("<r>a\r\nb\rc</r>")

    def test_deep_document_5000(self):
        deep = ("<root>" + "".join(f"<n{i}>" for i in range(5000)) + "x"
                + "".join(f"</n{i}>" for i in reversed(range(5000)))
                + "</root>")
        assert_identical(deep)

    def test_size_covers_attributes(self):
        _, doc = assert_identical('<r><a x="1" y="2"/></r>')
        a = doc.root_element.children[0]
        # The descendant window pre < x <= pre+size spans the attributes.
        assert a.size == 2 * KEY_STRIDE

    def test_mixed_content_text_runs(self):
        assert_identical("<r>one<y/>two<z/>three</r>")


class TestBytesInput:
    def test_plain_utf8_bytes(self):
        py = parse_document("<r>é</r>".encode("utf-8"), backend="python")
        ex = parse_document("<r>é</r>".encode("utf-8"), backend="expat")
        assert rows(py) == rows(ex)
        assert ex.root_element.string_value() == "é"

    def test_utf8_bom(self):
        data = b"\xef\xbb\xbf<r>x</r>"
        for backend in BACKENDS:
            doc = parse_document(data, backend=backend)
            assert doc.root_element.string_value() == "x"

    def test_utf16_bom(self):
        data = '<?xml version="1.0" encoding="utf-16"?><r>é</r>' \
            .encode("utf-16")
        for backend in BACKENDS:
            doc = parse_document(data, backend=backend)
            assert doc.root_element.string_value() == "é"

    def test_declared_latin1(self):
        data = ('<?xml version="1.0" encoding="ISO-8859-1"?><r>é</r>'
                .encode("latin-1"))
        for backend in BACKENDS:
            doc = parse_document(data, backend=backend)
            assert doc.root_element.string_value() == "é"

    def test_decode_xml_bytes_unknown_encoding(self):
        with pytest.raises(XMLSyntaxError):
            decode_xml_bytes(
                b'<?xml version="1.0" encoding="no-such-enc"?><r/>')

    def test_str_and_bytes_same_tree(self):
        text = generate_persons(XMARK)
        assert rows(parse_document(text)) \
            == rows(parse_document(text.encode("utf-8")))


class TestDispatchAndFallback:
    def test_default_is_expat(self, monkeypatch):
        monkeypatch.delenv("REPRO_XML_BACKEND", raising=False)
        assert default_backend() == "expat"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_XML_BACKEND", "python")
        assert default_backend() == "python"
        before = PARSE_STATS.snapshot()["documents_python"]
        parse_document("<r/>")
        assert PARSE_STATS.snapshot()["documents_python"] == before + 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            parse_document("<r/>", backend="libxml2")

    def test_internal_subset_falls_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_XML_BACKEND", raising=False)
        # Declared entities are outside the expat backend's subset; the
        # python parser skips the subset but rejects the *reference*, so
        # the dispatcher's fallback re-diagnoses uniformly.
        text = '<!DOCTYPE r [<!ENTITY e "x">]><r>&e;</r>'
        with pytest.raises(ExpatUnsupported):
            parse_document_expat(text)
        before = PARSE_STATS.snapshot()["fallbacks_to_python"]
        with pytest.raises(XMLSyntaxError):
            parse_document(text)
        assert PARSE_STATS.snapshot()["fallbacks_to_python"] == before + 1

    def test_explicit_expat_never_falls_back(self):
        with pytest.raises(ExpatUnsupported):
            parse_document('<!DOCTYPE r [<!ENTITY e "x">]><r/>',
                           backend="expat")

    def test_malformed_error_parity(self):
        cases = ["<r>", "<r></s>", "<r a='1' a='2'/>", "text only",
                 "<r>&unknown;</r>", "<a/><b/>"]
        for text in cases:
            for backend in (None, "python", "expat"):
                with pytest.raises(XMLSyntaxError):
                    parse_document(text, backend=backend)

    def test_error_locations_match(self):
        text = "<root>\n  <unclosed>\n</root>"
        with pytest.raises(XMLSyntaxError) as py_err:
            parse_document(text, backend="python")
        with pytest.raises(XMLSyntaxError) as default_err:
            parse_document(text)  # expat fails, python re-diagnoses
        assert str(default_err.value) == str(py_err.value)

    def test_message_path_backend_threading(self):
        request = XRPCRequest(module="m", method="f", arity=1,
                              location="http://x/m.xq")
        request.add_call([[integer(1), string("a&b")]])
        payload = build_request(request)
        for backend in BACKENDS:
            parsed = parse_request(payload.encode("utf-8"), backend=backend)
            assert parsed.method == "f"
            assert parsed.calls[0][0][1].value == "a&b"


class TestTelemetry:
    def test_database_stats_counters(self):
        db = Database(xml_backend="expat")
        before = db.stats()
        db.register("d.xml", "<r><a/></r>")
        after = db.stats()
        assert after.xml_backend == "expat"
        assert after.parse_documents_expat == before.parse_documents_expat + 1
        assert after.parse_bytes_expat > before.parse_bytes_expat

    def test_database_python_ablation(self):
        db = Database(xml_backend="python")
        before = db.stats()
        db.register("d.xml", "<r/>")
        after = db.stats()
        assert after.parse_documents_python \
            == before.parse_documents_python + 1

    def test_explain_reports_no_parse_work_for_warm_doc(self):
        db = Database()
        db.register("d.xml", "<r><a>1</a></r>")
        explain = db.explain("doc('d.xml')//a")
        assert explain.documents_parsed == 0
        assert explain.parse_fallbacks == 0


# ---------------------------------------------------------------------------
# Property-based round-trips across both backends

_NAME_START = stringmod.ascii_letters + "_"
_NAME_CHARS = stringmod.ascii_letters + stringmod.digits + "_-."

xml_names = st.builds(
    lambda first, rest: first + rest,
    st.sampled_from(_NAME_START),
    st.text(alphabet=_NAME_CHARS, max_size=8),
)

xml_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cc", "Cs"),
                           blacklist_characters="\r"),
    max_size=40,
)


@st.composite
def xml_trees(draw, depth=2):
    name = draw(xml_names)
    attributes = draw(st.dictionaries(xml_names, xml_text, max_size=3))
    attr_text = "".join(
        f' {key}="{escape_attribute(value)}"'
        for key, value in attributes.items())
    if depth == 0:
        content = escape_text(draw(xml_text))
    else:
        parts = draw(st.lists(
            st.one_of(xml_text.map(escape_text),
                      xml_trees(depth=depth - 1)),
            max_size=3))
        content = "".join(parts)
    return f"<{name}{attr_text}>{content}</{name}>"


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_backends_agree_on_random_trees(text):
    assert rows(parse_document(text, backend="python")) \
        == rows(parse_document(text, backend="expat"))


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_round_trip_across_backends(text):
    # parse -> serialize -> parse is a fixed point, on either backend,
    # and the serialized form is backend-independent.
    serialized = {}
    for backend in BACKENDS:
        doc = parse_document(text, backend=backend)
        serialized[backend] = serialize(doc)
        reparsed = parse_document(serialized[backend], backend=backend)
        assert rows(reparsed) == rows(
            parse_document(serialized[backend],
                           backend="python" if backend == "expat"
                           else "expat"))
        assert serialize(reparsed) == serialized[backend]
    assert serialized["expat"] == serialized["python"]
