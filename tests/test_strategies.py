"""Unit tests for the section-5 strategies and workload generators."""

import pytest

from repro.engine import MonetEngine, TreeEngine
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.strategies import (
    STRATEGY_NAMES,
    build_strategy_query,
    query_semijoin,
    run_strategy,
)
from repro.workloads.films import film_db
from repro.workloads.modules import FUNCTIONS_B_LOCATION, FUNCTIONS_B_MODULE
from repro.workloads.xmark import XMarkConfig, generate_auctions, generate_persons
from repro.wrapper import XRPCWrapper
from repro.xml import parse_document


class TestXMarkGenerator:
    CONFIG = XMarkConfig(persons=30, closed_auctions=100, matches=5, seed=1)

    def test_persons_cardinality(self):
        doc = parse_document(generate_persons(self.CONFIG))
        persons = [n for n in doc.descendants() if n.node_name == "person"]
        assert len(persons) == 30

    def test_person_ids_unique_and_shaped(self):
        doc = parse_document(generate_persons(self.CONFIG))
        ids = [n.get_attribute("id").value
               for n in doc.descendants() if n.node_name == "person"]
        assert len(set(ids)) == 30
        assert all(pid.startswith("person") for pid in ids)

    def test_auction_cardinality(self):
        doc = parse_document(generate_auctions(self.CONFIG))
        auctions = [n for n in doc.descendants()
                    if n.node_name == "closed_auction"]
        assert len(auctions) == 100

    def test_exactly_n_matches(self):
        doc = parse_document(generate_auctions(self.CONFIG))
        person_ids = {f"person{i}" for i in range(self.CONFIG.persons)}
        buyers = [n.get_attribute("person").value
                  for n in doc.descendants() if n.node_name == "buyer"]
        assert sum(1 for b in buyers if b in person_ids) == 5

    def test_deterministic(self):
        assert generate_auctions(self.CONFIG) == generate_auctions(self.CONFIG)
        other = XMarkConfig(persons=30, closed_auctions=100, matches=5, seed=2)
        assert generate_auctions(self.CONFIG) != generate_auctions(other)

    def test_annotation_present(self):
        doc = parse_document(generate_auctions(self.CONFIG))
        annotations = [n for n in doc.descendants()
                       if n.node_name == "annotation"]
        assert len(annotations) == 100

    def test_film_db_padding(self):
        doc = parse_document(film_db(extra_films=10))
        films = [n for n in doc.descendants() if n.node_name == "film"]
        assert len(films) == 13  # 3 paper films + 10 synthetic


class TestStrategyQueries:
    def test_builder_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_strategy_query("teleportation", "B")

    def test_all_builders_produce_queries(self):
        for strategy in STRATEGY_NAMES:
            text = build_strategy_query(strategy, "peerB")
            assert "peerB" in text

    def test_semijoin_query_shape(self):
        text = query_semijoin("B")
        assert "b:Q_B3" in text
        assert "empty($ca)" in text


@pytest.fixture
def two_peer_site():
    config = XMarkConfig(persons=25, closed_auctions=120, matches=4)
    network = SimulatedNetwork()
    peer_a = XRPCPeer("A", network, engine=MonetEngine())
    peer_a.registry.register_source(FUNCTIONS_B_MODULE,
                                    location=FUNCTIONS_B_LOCATION)
    peer_a.store.register("persons.xml", generate_persons(config))
    wrapper = XRPCWrapper(engine=TreeEngine(), transport=network, host="B")
    wrapper.engine.registry.register_source(FUNCTIONS_B_MODULE,
                                            location=FUNCTIONS_B_LOCATION)
    wrapper.store.register("auctions.xml", generate_auctions(config))
    doc_server = XRPCPeer("B", network, engine=MonetEngine())
    doc_server.store = wrapper.store

    def routed(payload: str) -> str:
        if 'module="functions_b"' in payload:
            return wrapper.handle(payload)
        return doc_server.server.handle(payload)

    network.register_peer("B", routed)
    return network, peer_a, config


class TestStrategyExecution:
    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_all_strategies_same_answer(self, two_peer_site, strategy):
        network, peer_a, config = two_peer_site
        run = run_strategy(strategy, peer_a, "B", network=network)
        assert run.results == config.matches

    def test_semijoin_bulk_single_message(self, two_peer_site):
        network, peer_a, config = two_peer_site
        run = run_strategy("distributed semi-join", peer_a, "B",
                           network=network)
        assert run.messages_sent == 1

    def test_relocation_single_call(self, two_peer_site):
        network, peer_a, config = two_peer_site
        run = run_strategy("execution relocation", peer_a, "B",
                           network=network)
        # One call to Q_B2; B itself fetches persons.xml from A.
        assert run.messages_sent == 1

    def test_data_shipping_moves_most_bytes(self, two_peer_site):
        network, peer_a, config = two_peer_site
        volumes = {}
        for strategy in STRATEGY_NAMES:
            volumes[strategy] = run_strategy(
                strategy, peer_a, "B", network=network).bytes_shipped
        assert volumes["data shipping"] == max(volumes.values())
        assert volumes["distributed semi-join"] == min(volumes.values())
