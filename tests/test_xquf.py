"""XQuery Update Facility tests: update primitives, PULs, updating queries."""

import pytest

from repro.errors import UpdateError
from repro.xml import parse_document, serialize
from repro.xquery.evaluator import CompiledQuery, evaluate_query
from repro.xquery.modules import ModuleRegistry
from repro.xquf import PendingUpdateList, apply_updates
from tests.helpers import values


def run_update(query: str, doc_xml: str) -> str:
    """Run an updating query against a single document 'db.xml';
    returns the serialized post-state."""
    document = parse_document(doc_xml, uri="db.xml")
    evaluate_query(query, doc_resolver=lambda uri: document,
                   apply_pending_updates=True)
    return serialize(document)


class TestInsert:
    def test_insert_into(self):
        result = run_update(
            "insert node <c/> into doc('db.xml')/a", "<a><b/></a>")
        assert result == "<a><b/><c/></a>"

    def test_insert_as_first(self):
        result = run_update(
            "insert node <c/> as first into doc('db.xml')/a", "<a><b/></a>")
        assert result == "<a><c/><b/></a>"

    def test_insert_as_last(self):
        result = run_update(
            "insert node <c/> as last into doc('db.xml')/a", "<a><b/></a>")
        assert result == "<a><b/><c/></a>"

    def test_insert_before(self):
        result = run_update(
            "insert node <c/> before doc('db.xml')/a/b", "<a><b/></a>")
        assert result == "<a><c/><b/></a>"

    def test_insert_after(self):
        result = run_update(
            "insert node <c/> after doc('db.xml')/a/b[1]", "<a><b/><b/></a>")
        assert result == "<a><b/><c/><b/></a>"

    def test_insert_multiple_nodes(self):
        result = run_update(
            "insert nodes (<c/>, <d/>) into doc('db.xml')/a", "<a/>")
        assert result == "<a><c/><d/></a>"

    def test_insert_attribute(self):
        result = run_update(
            "insert node attribute y { '2' } into doc('db.xml')/a", "<a/>")
        assert result == '<a y="2"/>'

    def test_inserted_content_is_copied(self):
        document = parse_document("<a/>", uri="db.xml")
        query = "let $n := <b/> return (insert node $n into doc('db.xml')/a)"
        evaluate_query(query, doc_resolver=lambda uri: document)
        inserted = document.root_element.children[0]
        assert inserted.name == "b"
        # Fresh identity: a different doc_id than any constructed node.
        assert inserted.parent is document.root_element


class TestDelete:
    def test_delete_single(self):
        result = run_update("delete node doc('db.xml')/a/b", "<a><b/><c/></a>")
        assert result == "<a><c/></a>"

    def test_delete_multiple(self):
        result = run_update("delete nodes doc('db.xml')/a/b", "<a><b/><b/><c/></a>")
        assert result == "<a><c/></a>"

    def test_delete_attribute(self):
        result = run_update("delete node doc('db.xml')/a/@x", '<a x="1"/>')
        assert result == "<a/>"

    def test_delete_with_predicate(self):
        result = run_update(
            "delete nodes doc('db.xml')//item[@price > 10]",
            '<list><item price="5"/><item price="20"/></list>')
        assert result == '<list><item price="5"/></list>'


class TestReplace:
    def test_replace_node(self):
        result = run_update(
            "replace node doc('db.xml')/a/b with <z/>", "<a><b/></a>")
        assert result == "<a><z/></a>"

    def test_replace_value_of_element(self):
        result = run_update(
            "replace value of node doc('db.xml')/a/b with 'new'",
            "<a><b>old</b></a>")
        assert result == "<a><b>new</b></a>"

    def test_replace_value_of_attribute(self):
        result = run_update(
            "replace value of node doc('db.xml')/a/@x with '9'", '<a x="1"/>')
        assert result == '<a x="9"/>'

    def test_replace_attribute_node(self):
        result = run_update(
            "replace node doc('db.xml')/a/@x with attribute y { '2' }",
            '<a x="1"/>')
        assert result == '<a y="2"/>'


class TestRename:
    def test_rename_element(self):
        result = run_update(
            "rename node doc('db.xml')/a/b as 'c'", "<a><b/></a>")
        assert result == "<a><c/></a>"

    def test_rename_attribute(self):
        result = run_update(
            "rename node doc('db.xml')/a/@x as 'y'", '<a x="1"/>')
        assert result == '<a y="1"/>'


class TestPULSemantics:
    def test_updates_invisible_until_applied(self):
        document = parse_document("<a><b/></a>", uri="db.xml")
        compiled = CompiledQuery(
            "(insert node <c/> into doc('db.xml')/a, count(doc('db.xml')/a/*))")
        result, pul = compiled.execute(doc_resolver=lambda uri: document)
        # The query still sees the pre-update state.
        assert values(result) == [1]
        assert len(pul) == 1
        apply_updates(pul)
        assert len(document.root_element.children) == 2

    def test_pul_merge_union(self):
        document = parse_document("<a/>", uri="db.xml")
        resolver = lambda uri: document
        pul_total = PendingUpdateList()
        for label in ("x", "y"):
            compiled = CompiledQuery(
                f"insert node <{label}/> into doc('db.xml')/a")
            _, pul = compiled.execute(doc_resolver=resolver)
            pul_total.merge(pul)
        apply_updates(pul_total)
        names = [c.name for c in document.root_element.children]
        assert sorted(names) == ["x", "y"]

    def test_updating_function_in_module(self):
        module = """
        module namespace m = "urn:m";
        declare updating function m:add($target as node(), $name as xs:string)
        { insert node element { $name } {} into $target };
        """
        registry = ModuleRegistry()
        registry.register_source(module)
        document = parse_document("<a/>", uri="db.xml")
        query = """
        import module namespace m = "urn:m";
        m:add(doc('db.xml')/a, 'kid')
        """
        evaluate_query(query, registry=registry,
                       doc_resolver=lambda uri: document)
        assert document.root_element.children[0].name == "kid"

    def test_deletes_applied_last(self):
        # Insert relative to a node that is also deleted: insert must win
        # placement before the delete removes its anchor.
        document = parse_document("<a><b/></a>", uri="db.xml")
        query = """
        (insert node <c/> after doc('db.xml')/a/b,
         delete node doc('db.xml')/a/b)
        """
        evaluate_query(query, doc_resolver=lambda uri: document)
        assert serialize(document) == "<a><c/></a>"

    def test_fn_put_records_primitive(self):
        stored = {}
        document = parse_document("<a/>", uri="src.xml")
        evaluate_query(
            "put(doc('src.xml'), 'dest.xml')",
            doc_resolver=lambda uri: document,
            put_store=lambda uri, node: stored.__setitem__(uri, node))
        assert "dest.xml" in stored

    def test_replace_target_must_be_single(self):
        with pytest.raises(UpdateError):
            run_update(
                "replace node doc('db.xml')/a/b with <z/>", "<a><b/><b/></a>")


class TestUpdateErrors:
    def test_insert_into_text_node_rejected(self):
        with pytest.raises(UpdateError):
            run_update(
                "insert node <c/> into doc('db.xml')/a/text()", "<a>t</a>")

    def test_rename_text_node_rejected(self):
        with pytest.raises(UpdateError):
            run_update(
                "rename node doc('db.xml')/a/text() as 'x'", "<a>t</a>")

    def test_insert_before_root_rejected(self):
        # Document root's parent handling: before a parentless element.
        from repro.xml import parse_fragment
        from repro.xquf.pul import InsertBefore
        fragment = parse_fragment("<lone/>")
        with pytest.raises(UpdateError):
            InsertBefore(fragment, []).apply()
