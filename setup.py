"""Setuptools entry point.

A plain setup.py is kept so editable installs work in offline
environments whose setuptools lacks PEP 660 support (no `wheel` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'XRPC: Interoperable and Efficient Distributed "
        "XQuery' (Zhang & Boncz, VLDB 2007)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
