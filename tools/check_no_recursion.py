#!/usr/bin/env python
"""CI lint: no self-recursive traversals in repro/xdm/ and repro/xml/.

Those packages walk user-supplied documents, whose depth the engine
does not control — a recursive traversal there turns a deep (or
adversarial) document into a ``RecursionError``, which is why their
walkers are written iteratively (explicit stacks, pre/size windows).
This check keeps it that way: a function in the guarded packages that
calls itself fails the build.  "Calls itself" means, inside ``def f``:

* a bare call ``f(...)`` — unless the name ``f`` is rebound inside the
  function (a local ``from ... import f``, assignment, or parameter),
  in which case it is a different binding, not recursion;
* for methods only: ``self.f(...)``, ``cls.f(...)``, or ``other.f(...)``
  where ``other`` is a plain name (``child.serialize()`` inside
  ``def serialize`` is exactly the traversal pattern this forbids).
  Deeper receivers (``self.text.startswith(...)``) are same-named
  *foreign* methods and are ignored, as are dunder methods
  (``super().__init__`` chains).

Knowingly-bounded recursion can be allowlisted by putting a
``# recursion-ok: <why>`` comment on the ``def`` line.

Usage: python tools/check_no_recursion.py [repo-root]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

GUARDED = ("src/repro/xdm", "src/repro/xml")


def _local_rebindings(func: ast.AST) -> set[str]:
    """Names (re)bound inside *func*'s own scope: parameters, local
    imports, assignment targets."""
    bound: set[str] = set()
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
            continue
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        stack.extend(ast.iter_child_nodes(node))
    return bound


def _self_call_lines(func: ast.AST, is_method: bool) -> list[int]:
    name = func.name
    if name.startswith("__") and name.endswith("__"):
        return []
    rebound = _local_rebindings(func)
    lines: list[int] = []
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue  # nested scopes are checked on their own
        if isinstance(node, ast.Call):
            target = node.func
            if isinstance(target, ast.Name) and target.id == name \
                    and name not in rebound:
                lines.append(node.lineno)
            elif is_method and isinstance(target, ast.Attribute) \
                    and target.attr == name \
                    and isinstance(target.value, ast.Name):
                lines.append(node.lineno)
        stack.extend(ast.iter_child_nodes(node))
    return lines


def _walk_scopes(node: ast.AST, in_class: bool, found: list):
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append((child, in_class))
            _walk_scopes(child, False, found)
        elif isinstance(child, ast.ClassDef):
            _walk_scopes(child, True, found)
        else:
            _walk_scopes(child, in_class, found)


def check_file(path: Path) -> list[str]:
    source = path.read_text(encoding="utf-8")
    source_lines = source.splitlines()
    functions: list = []
    _walk_scopes(ast.parse(source, str(path)), False, functions)
    problems = []
    for func, is_method in functions:
        if "recursion-ok" in source_lines[func.lineno - 1]:
            continue
        for lineno in _self_call_lines(func, is_method):
            problems.append(
                f"{path}:{lineno}: {func.name} recurses into itself; "
                "rewrite iteratively or annotate the def with "
                "'# recursion-ok: <why>'")
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 \
        else Path(__file__).resolve().parents[1]
    problems = []
    for guarded in GUARDED:
        for path in sorted((root / guarded).rglob("*.py")):
            problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} recursive traversal(s) in guarded packages",
              file=sys.stderr)
        return 1
    print(f"no self-recursive traversals under {', '.join(GUARDED)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
