"""Distributed query strategies for Q7 (section 5 of the paper).

Distributes an XMark-like dataset over two peers — persons on a
MonetDB-profile peer A, auctions on a Saxon-profile peer B reachable
only through the XRPC wrapper — and runs the join query Q7 under all
four strategies, printing the Table-4-style comparison.

Run::

    python examples/distributed_semijoin.py [--scale small|paper]
"""

import sys

from repro.experiments.table4 import Table4Experiment
from repro.strategies import STRATEGY_NAMES, build_strategy_query
from repro.workloads.xmark import XMarkConfig


def main() -> None:
    scale = "paper" if "--scale" in sys.argv and "paper" in sys.argv else "small"
    if scale == "paper":
        config = XMarkConfig(persons=250, closed_auctions=4875, matches=6)
    else:
        config = XMarkConfig(persons=50, closed_auctions=600, matches=6)

    print(f"Scale: {config.persons} persons, "
          f"{config.closed_auctions} closed auctions, "
          f"{config.matches} buyer matches\n")

    print("The four strategy rewrites (what actually ships):\n")
    for strategy in STRATEGY_NAMES:
        print(f"--- {strategy} " + "-" * (50 - len(strategy)))
        print(build_strategy_query(strategy, "B").strip(), "\n")

    experiment = Table4Experiment(xmark=config, mode="modeled")
    rows = experiment.run()
    print(Table4Experiment.render(rows))
    print()
    fastest = min(rows, key=lambda row: row.total_ms)
    print(f"Winner: {fastest.strategy} "
          f"({fastest.total_ms:.0f} ms modeled, "
          f"{fastest.bytes_shipped / 1024:.1f} KB shipped)")


if __name__ == "__main__":
    main()
