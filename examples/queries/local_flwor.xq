(: Purely local, fully inside the loop-lifted core: a FLWOR over
   path steps with a comparison predicate.  `repro check --analysis`
   reports liftable=yes for this one. :)
for $auction in doc("auctions.xml")//closed_auction[buyer/@person = "person0"]
return $auction/price
