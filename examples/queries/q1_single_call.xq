(: Paper Q1: one remote function call shipped to a single peer. :)
import module namespace f = "films" at "http://x.example.org/film.xq";

<films> {
  execute at {"xrpc://y.example.org"}
  { f:filmsByActor("Sean Connery") }
} </films>
