(: XQUF updating query: flagged updating=yes by the analyzer, so a
   peer routes it through the strict (non-speculative) executor. :)
insert node <film><name>Dr. No</name><actor>Sean Connery</actor></film>
  as last into doc("filmDB.xml")/films
