(: Library module from the paper's running example (Fig. 1):
   filmography lookups a film server exposes over XRPC. :)
module namespace film = "films";

declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor = $actor] };

declare function film:actors() as node()*
{ doc("filmDB.xml")//actor };
