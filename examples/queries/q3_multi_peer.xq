(: Paper Q3: dynamic destinations — calls group per peer. :)
import module namespace f = "films" at "http://x.example.org/film.xq";

<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
  return execute at {$dst} { f:filmsByActor($actor) }
} </films>
