(: Paper Q2: the remote call sits in a FLWOR loop — the loop-lifted
   rewrite groups all iterations into one Bulk XRPC message. :)
import module namespace f = "films" at "http://x.example.org/film.xq";

<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  let $dst := "xrpc://y.example.org"
  return execute at {$dst} { f:filmsByActor($actor) }
} </films>
