"""Quickstart: the paper's film-database examples (Q1, Q2, Q3).

A local :class:`repro.session.Database` session first (the unified
prepare/execute surface with plan telemetry), then three XQuery peers
sharing a film module; the origin peer executes the paper's queries
over the simulated network, demonstrating single XRPC calls, Bulk RPC
from a for-loop, and multi-destination parallel dispatch — every query
routed lifted-plan-first through the same pipeline.

Run::

    python examples/quickstart.py
"""

from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.session import Database
from repro.workloads.films import FILM_MODULE, FILM_MODULE_LOCATION
from repro.xml.serializer import serialize_sequence


FILMS_Y = """<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>"""

FILMS_Z = """<films>
<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>
<film><name>The Untouchables</name><actor>Sean Connery</actor></film>
</films>"""


def main() -> None:
    # --- Q0: a local session through the unified Database facade --------
    db = Database()
    db.register("filmDB.xml", FILMS_Y)
    by_name = db.prepare("doc('filmDB.xml')//film[name = $t]/actor/text()")
    print("Q0 (local session, prepared query):")
    for title in ("The Rock", "Green Card"):
        print(f"  {title}:", serialize_sequence(by_name.execute(t=title)))
    explain = by_name.last_explain
    print(f"  plan: {explain.plan}, "
          f"plan cache {'hit' if explain.cache_hit else 'miss'}; "
          f"stats: {db.stats().lifted_executions} lifted / "
          f"{db.stats().interpreter_executions} interpreted\n")

    # One in-process network; three peers (p0 originates, y and z serve).
    network = SimulatedNetwork()
    p0 = XRPCPeer("p0.example.org", network)
    peer_y = XRPCPeer("y.example.org", network)
    peer_z = XRPCPeer("z.example.org", network)

    # Deploy the film.xq module everywhere and the databases on y and z.
    for peer in (p0, peer_y, peer_z):
        peer.registry.register_source(FILM_MODULE,
                                      location=FILM_MODULE_LOCATION)
    peer_y.store.register("filmDB.xml", FILMS_Y)
    peer_z.store.register("filmDB.xml", FILMS_Z)

    # --- Q1: a single remote function application -----------------------
    q1 = f"""
    import module namespace f="films" at "{FILM_MODULE_LOCATION}";
    <films> {{
      execute at {{"xrpc://y.example.org"}}
      {{ f:filmsByActor("Sean Connery") }}
    }} </films>
    """
    result = p0.execute_query(q1)
    print("Q1 (single call):")
    print(" ", serialize_sequence(result.sequence))
    print(f"  messages sent: {result.messages_sent} "
          f"(plan: {result.plan})\n")

    # --- Q2: a call inside a for-loop => ONE bulk message ----------------
    q2 = f"""
    import module namespace f="films" at "{FILM_MODULE_LOCATION}";
    <films> {{
      for $actor in ("Julie Andrews", "Sean Connery")
      let $dst := "xrpc://y.example.org"
      return execute at {{$dst}} {{ f:filmsByActor($actor) }}
    }} </films>
    """
    result = p0.execute_query(q2)
    print("Q2 (loop over actors, one destination):")
    print(" ", serialize_sequence(result.sequence))
    print(f"  messages sent: {result.messages_sent} "
          f"(bulk RPC: {result.calls_shipped} calls in one message)\n")

    # --- Q3: two actors x two destinations => one bulk message per peer --
    q3 = f"""
    import module namespace f="films" at "{FILM_MODULE_LOCATION}";
    <films> {{
      for $actor in ("Julie Andrews", "Sean Connery")
      for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
      return execute at {{$dst}} {{ f:filmsByActor($actor) }}
    }} </films>
    """
    result = p0.execute_query(q3)
    print("Q3 (two actors x two peers):")
    print(" ", serialize_sequence(result.sequence))
    print(f"  messages sent: {result.messages_sent} "
          f"({result.calls_shipped} calls, one bulk message per peer)")

    # The element constructor around the loop keeps Q1–Q3 on the
    # interpreter + batching executor; a bare loop of remote calls runs
    # straight from the lifted relational plan (Figure 2).
    q4 = f"""
    import module namespace f="films" at "{FILM_MODULE_LOCATION}";
    for $actor in ("Julie Andrews", "Sean Connery")
    return execute at {{"xrpc://y.example.org"}} {{ f:filmsByActor($actor) }}
    """
    result = p0.execute_query(q4)
    print("\nQ4 (bare loop, loop-lifted plan):")
    print(" ", serialize_sequence(result.sequence))
    print(f"  plan: {result.plan}, messages sent: {result.messages_sent}")


if __name__ == "__main__":
    main()
