"""P2P-style multi-hop XRPC: nested calls routing through a peer network.

The paper motivates XRPC for P2P data management: "by calling functions
that themselves perform XRPC calls, complex P2P communication patterns
can be achieved" (§1), and §2.2 analyses the resulting call *tree*.

This example builds a small ring of peers, each holding a shard of a
distributed film catalogue plus a routing function that forwards lookups
it cannot answer to its successor — a miniature DHT-style lookup
expressed entirely in XQuery + XRPC.  Repeatable-read isolation carries
the queryID along every hop, so the whole multi-hop query observes one
consistent snapshot.

Run::

    python examples/p2p_routing.py
"""

from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer

# Each peer knows its shard boundaries and its successor; a lookup hops
# around the ring until the responsible shard answers.
ROUTER_MODULE = """
module namespace ring = "urn:ring";

declare function ring:lookup($title as xs:string,
                             $hops as xs:integer) as node()* {
  if ($hops > 4) then error('RING0001', 'routing loop')
  else
    let $hit := doc("shard.xml")//film[name = $title]
    return
      if (exists($hit)) then
        <answer peer="{string(doc("shard.xml")/shard/@peer)}"
                hops="{$hops}">{ $hit/actor/text() }</answer>
      else
        let $next := string(doc("shard.xml")/shard/@next)
        return execute at { concat("xrpc://", $next) }
               { ring:lookup($title, $hops + 1) }
};
"""

SHARDS = {
    "peer1": ("peer2", [("The Rock", "Sean Connery")]),
    "peer2": ("peer3", [("Sound Of Music", "Julie Andrews")]),
    "peer3": ("peer1", [("Green Card", "Gerard Depardieu")]),
}


def shard_xml(name: str) -> str:
    successor, films = SHARDS[name]
    rows = "".join(
        f"<film><name>{title}</name><actor>{actor}</actor></film>"
        for title, actor in films)
    return f'<shard peer="{name}" next="{successor}">{rows}</shard>'


def main() -> None:
    network = SimulatedNetwork()
    peers = {}
    for name in SHARDS:
        peer = XRPCPeer(name, network)
        peer.registry.register_source(ROUTER_MODULE, location="ring.xq")
        peer.store.register("shard.xml", shard_xml(name))
        peers[name] = peer

    origin = XRPCPeer("client", network)
    origin.registry.register_source(ROUTER_MODULE, location="ring.xq")

    for title in ("The Rock", "Sound Of Music", "Green Card"):
        result = origin.execute_query(f"""
        import module namespace ring = "urn:ring" at "ring.xq";
        declare option xrpc:isolation "repeatable";
        execute at {{"xrpc://peer1"}} {{ ring:lookup("{title}", 1) }}
        """)
        [answer] = result.sequence
        print(f"{title!r}: actor={answer.string_value()!r} "
              f"(answered by {answer.get_attribute('peer').value} "
              f"after {answer.get_attribute('hops').value} hop(s); "
              f"plan: {result.plan}; "
              f"peers seen by the origin: {result.participants})")

    print("\nEvery hop carried the same queryID, so the whole lookup ran "
          "against one consistent snapshot (repeatable read).")


if __name__ == "__main__":
    main()
