"""Distributed updates: XQUF over XRPC with isolation and 2PC.

Demonstrates section 2.3 of the paper:

1. rule R_Fu — an updating call without isolation applies immediately;
2. rule R'_Fu — under ``declare option xrpc:isolation "repeatable"``,
   updates defer to a WS-AtomicTransaction-style two-phase commit across
   every participating peer;
3. atomicity — a write-write conflict at one peer aborts the whole
   distributed transaction, leaving all peers unchanged.

Run::

    python examples/updates_2pc.py
"""

from repro.errors import TransactionError
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer

ACCOUNTS_MODULE = """
module namespace acc = "urn:accounts";

declare function acc:balance() as xs:string
{ string(doc("account.xml")/account/balance) };

declare updating function acc:set-balance($v as xs:string)
{ replace value of node doc("account.xml")/account/balance with $v };

declare updating function acc:log-transfer($note as xs:string)
{ insert node <entry>{$note}</entry> into doc("account.xml")/account/log };
"""


def make_bank(network: SimulatedNetwork, names: list[str]) -> list[XRPCPeer]:
    peers = []
    for name in names:
        peer = XRPCPeer(name, network)
        peer.registry.register_source(ACCOUNTS_MODULE, location="acc.xq")
        peer.store.register(
            "account.xml",
            "<account><balance>100</balance><log/></account>")
        peers.append(peer)
    return peers


def main() -> None:
    network = SimulatedNetwork()
    origin, bank_a, bank_b = make_bank(network, ["origin", "bankA", "bankB"])

    # --- 1. Immediate updates (rule R_Fu) --------------------------------
    result = origin.execute_query("""
    import module namespace acc = "urn:accounts" at "acc.xq";
    execute at {"xrpc://bankA"} { acc:set-balance("80") }
    """)
    print("After immediate update, bankA balance:",
          bank_a.store.get("account.xml").root_element
          .find("balance").string_value())
    print(f"  (plan: {result.plan} — updating remote calls route through "
          "the record-then-ship batching executor, never speculatively)")

    # --- 2. Atomic distributed transfer (rule R'_Fu + 2PC) ---------------
    result = origin.execute_query("""
    import module namespace acc = "urn:accounts" at "acc.xq";
    declare option xrpc:isolation "repeatable";
    ( execute at {"xrpc://bankA"} { acc:set-balance("60") },
      execute at {"xrpc://bankB"} { acc:set-balance("120") },
      execute at {"xrpc://bankA"} { acc:log-transfer("sent 20 to B") },
      execute at {"xrpc://bankB"} { acc:log-transfer("received 20 from A") } )
    """)
    print("\nDistributed transfer committed via 2PC:",
          result.committed_2pc)
    print("  participants:", result.participants)
    for name, peer in (("bankA", bank_a), ("bankB", bank_b)):
        account = peer.store.get("account.xml").root_element
        print(f"  {name}: balance={account.find('balance').string_value()!r},"
              f" log entries={len(account.find('log').children)}")
    print("  bankA 2PC journal:",
          [action for action, _ in bank_a.isolation.log.records])

    # --- 3. Conflict: a competing commit aborts everything ---------------
    original_handle = bank_b.server.handle

    def interfering_handle(payload: str) -> str:
        response = original_handle(payload)
        if "set-balance" in payload:
            # Another transaction commits at bankB mid-flight.
            bank_b.store.register(
                "account.xml",
                "<account><balance>999</balance><log/></account>")
        return response

    network.register_peer("bankB", interfering_handle)

    try:
        origin.execute_query("""
        import module namespace acc = "urn:accounts" at "acc.xq";
        declare option xrpc:isolation "repeatable";
        ( execute at {"xrpc://bankA"} { acc:set-balance("0") },
          execute at {"xrpc://bankB"} { acc:set-balance("0") } )
        """)
    except TransactionError as exc:
        print("\nConflicting transaction correctly aborted:")
        print("  ", exc)
    balance_a = bank_a.store.get("account.xml").root_element \
        .find("balance").string_value()
    print(f"  bankA untouched by the aborted transaction: balance={balance_a}")


if __name__ == "__main__":
    main()
