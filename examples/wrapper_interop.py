"""Cross-system interop over real HTTP: native peer calls a wrapped engine.

Demonstrates sections 2.1 and 4 of the paper end-to-end with *actual*
SOAP-over-HTTP on the loopback interface:

* a Saxon-profile engine (no native XRPC) is exposed through the XRPC
  wrapper behind a real HTTP server;
* a MonetDB-profile peer ships a Bulk RPC request to it with a single
  HTTP POST and unmarshals the typed results;
* the raw SOAP request message is printed so the wire format of the
  paper's section 2.1 is visible.

Run::

    python examples/wrapper_interop.py
"""

from repro.engine import TreeEngine
from repro.net import HttpTransport, HttpXRPCServer
from repro.rpc import XRPCPeer
from repro.soap import XRPCRequest, build_request
from repro.workloads.xmark import XMarkConfig, generate_persons
from repro.wrapper import XRPCWrapper
from repro.xdm.atomic import string

FUNCTIONS_MODULE = """
module namespace func = "functions";
declare function func:getPerson($doc as xs:string,
                                $pid as xs:string) as node()?
{ zero-or-one(doc($doc)//person[@id = $pid]) };
"""

LOCATION = "http://example.org/functions.xq"


def main() -> None:
    # The Saxon-profile side: a wrapped engine with an XMark document.
    wrapper = XRPCWrapper(engine=TreeEngine())
    wrapper.engine.registry.register_source(FUNCTIONS_MODULE,
                                            location=LOCATION)
    wrapper.store.register(
        "people.xml", generate_persons(XMarkConfig(persons=20)))

    # Show the SOAP message that will travel (section 2.1's format).
    preview = XRPCRequest(module="functions", method="getPerson", arity=2,
                          location=LOCATION)
    preview.add_call([[string("people.xml")], [string("person3")]])
    print("SOAP XRPC request on the wire:")
    print(build_request(preview))
    print()

    with HttpXRPCServer(wrapper.handle) as server:
        print(f"Wrapped engine serving at http://{server.address}/xrpc\n")

        transport = HttpTransport({"saxon.example.org": server.address})
        origin = XRPCPeer("monet.example.org", transport)
        origin.registry.register_source(FUNCTIONS_MODULE, location=LOCATION)

        query = """
        import module namespace func = "functions"
            at "http://example.org/functions.xq";
        for $pid in ("person1", "person3", "person7")
        return execute at {"xrpc://saxon.example.org"}
               { func:getPerson("people.xml", $pid) }
        """
        result = origin.execute_query(query)
        print("Results fetched over HTTP (one bulk POST for 3 calls):")
        for node in result.sequence:
            pid = node.get_attribute("id").value
            name = node.find("name").string_value()
            print(f"  {pid}: {name}")
        print(f"\nHTTP requests sent: {result.messages_sent}, "
              f"calls shipped: {result.calls_shipped}, "
              f"plan: {result.explain().plan}")


if __name__ == "__main__":
    main()
