"""Benchmark: posting-list keyword search vs naive fn:contains scans.

The keyword-search subsystem's acceptance gate: answering a keyword
query from the inverted term index (:mod:`repro.search`) — posting-list
intersection plus the subtree-window bisects — must beat the naive
full-document scan (``string_value`` per element + substring test, the
tree interpreter's ``fn:contains`` cost) by a wide margin.  Both sides
are asserted result-identical before timing.

Run standalone (CI uploads the JSON):

    PYTHONPATH=src python -m pytest -q -rA \
        benchmarks/bench_keyword_search.py \
        --benchmark-json=BENCH_keyword_search.json
"""

import time

import pytest

from repro.search.index import keyword_search, term_index_for
from repro.search.naive import naive_contains_scan, naive_search
from repro.workloads.xmark import XMarkConfig, generate_auctions
from repro.xml import parse_document

SCALES = {
    "sf-small": XMarkConfig(persons=25, closed_auctions=120, open_auctions=12),
    "sf-medium": XMarkConfig(persons=50, closed_auctions=300, open_auctions=30),
    "sf-large": XMarkConfig(persons=100, closed_auctions=600, open_auctions=60),
}
LARGEST = "sf-large"

# Needles of different selectivities over the XMark vocabulary;
# "provenance certificate" exercises the multi-token (suffix + prefix)
# constraint path.
NEEDLES = {
    "contains-rare": "provenance",
    "contains-common": "auction",
    "contains-phrase": "provenance certificate",
}

_documents = {}


def _document(scale: str):
    if scale not in _documents:
        _documents[scale] = parse_document(
            generate_auctions(SCALES[scale]), uri="auctions.xml")
    return _documents[scale]


def _indexed_contains(root, needle: str) -> list:
    return term_index_for(root).contains_scan(needle)


def _timed(function, *args) -> tuple[float, list]:
    started = time.perf_counter()
    result = function(*args)
    return time.perf_counter() - started, result


@pytest.mark.parametrize("scale", list(SCALES))
@pytest.mark.parametrize("shape", list(NEEDLES))
def test_posting_plan_speedup(benchmark, report, scale, shape):
    needle = NEEDLES[shape]
    root = _document(scale)

    # Warm both paths (index build on the indexed side), then assert
    # the prefiltered scan returns exactly the naive scan's elements.
    _, warm_indexed = _timed(_indexed_contains, root, needle)
    _, warm_naive = _timed(naive_contains_scan, root, needle)
    assert warm_indexed == warm_naive

    naive_seconds = min(
        _timed(naive_contains_scan, root, needle)[0] for _ in range(3))
    benchmark.pedantic(_timed, args=(_indexed_contains, root, needle),
                       rounds=3, iterations=1)
    indexed_seconds = benchmark.stats.stats.min
    speedup = naive_seconds / max(indexed_seconds, 1e-9)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["naive_ms"] = round(naive_seconds * 1000, 3)
    benchmark.extra_info["indexed_ms"] = round(indexed_seconds * 1000, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    report(f"keyword search [{scale:9s}] {shape:16s} "
           f"naive {naive_seconds * 1000:9.2f} ms -> "
           f"indexed {indexed_seconds * 1000:7.2f} ms  ({speedup:8.1f}x)")

    # Acceptance floor: >= 10x over the naive full-document contains
    # scan at the largest scale factor (measured margins are larger).
    if scale == LARGEST:
        assert speedup >= 10.0, (shape, speedup)


@pytest.mark.parametrize("scale", [LARGEST])
def test_slca_speedup(benchmark, report, scale):
    root = _document(scale)
    terms = ["provenance", "certificate"]

    _, warm_indexed = _timed(keyword_search, root, terms)
    _, warm_naive = _timed(naive_search, root, terms)
    assert [(h.node, h.score) for h in warm_indexed] \
        == [(h.node, h.score) for h in warm_naive]

    naive_seconds = min(
        _timed(naive_search, root, terms)[0] for _ in range(3))
    benchmark.pedantic(_timed, args=(keyword_search, root, terms),
                       rounds=3, iterations=1)
    indexed_seconds = benchmark.stats.stats.min
    speedup = naive_seconds / max(indexed_seconds, 1e-9)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["speedup"] = round(speedup, 1)
    report(f"SLCA search    [{scale:9s}] {'two-terms':16s} "
           f"naive {naive_seconds * 1000:9.2f} ms -> "
           f"indexed {indexed_seconds * 1000:7.2f} ms  ({speedup:8.1f}x)")
    assert speedup >= 10.0, speedup
