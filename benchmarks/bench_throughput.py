"""Benchmark for the section 3.3 throughput experiment.

Checks the CPU-bound asymmetry the paper reports: the request path
(bounded by shredding, ~8 MB/s there) is slower than the response path
(bounded by serialization, ~14 MB/s).
"""

import pytest

from repro.experiments.throughput import ThroughputExperiment


@pytest.mark.parametrize("direction", ["request", "response"])
def test_throughput_direction(benchmark, direction):
    experiment = ThroughputExperiment(rows_per_payload=4000)
    row = benchmark.pedantic(
        experiment.measure, args=(direction,), rounds=1, iterations=1)
    benchmark.extra_info.update({
        "direction": direction,
        "payload_mb": round(row.payload_bytes / 1e6, 2),
        "mb_per_second": round(row.mb_per_second, 2),
    })
    assert row.payload_bytes > 100_000


def test_throughput_asymmetry(benchmark, report):
    experiment = ThroughputExperiment(rows_per_payload=4000)
    rows = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(ThroughputExperiment.render(rows))
    request = next(r for r in rows if r.direction == "request")
    response = next(r for r in rows if r.direction == "response")
    assert response.mb_per_second > request.mb_per_second


def test_throughput_wall_clock(benchmark, report):
    """Real (unsimulated) MB/s of the message path on this machine.

    This is the number the streaming serialization work moves: it
    measures actual build/parse/marshal CPU cost, not the calibrated
    cost model.  Tracked in CI logs to keep perf regressions visible.
    """
    experiment = ThroughputExperiment(rows_per_payload=4000, simulated=False)
    rows = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report("Wall-clock message-path throughput (streaming pipeline):")
    report(ThroughputExperiment.render(rows))
    for row in rows:
        benchmark.extra_info[f"{row.direction}_mb_per_second"] = \
            round(row.mb_per_second, 2)
    assert all(row.mb_per_second > 0 for row in rows)
