"""Benchmark regenerating Table 3: wrapper latency decomposition.

Measures the wrapped Saxon-profile engine handling echoVoid and
getPerson requests with 1 and 1000 calls; the compile/treebuild/exec
phase split lands in ``extra_info``.
"""

import pytest

from repro.experiments.table3 import Table3Experiment
from repro.workloads.xmark import XMarkConfig

_EXPERIMENT = Table3Experiment(calls=(1, 1000),
                               xmark=XMarkConfig(persons=3000))


@pytest.mark.parametrize("method,calls", [
    ("echoVoid", 1),
    ("echoVoid", 1000),
    ("getPerson", 1),
    ("getPerson", 1000),
])
def test_table3_cell(benchmark, method, calls):
    row = benchmark.pedantic(
        _EXPERIMENT.measure, args=(method, calls), rounds=1, iterations=1)
    benchmark.extra_info.update({
        "function": method,
        "calls": calls,
        "total_ms": round(row.total_ms, 2),
        "compile_ms": round(row.compile_ms, 2),
        "treebuild_ms": round(row.treebuild_ms, 2),
        "exec_ms": round(row.exec_ms, 2),
    })


def test_table3_full(benchmark, report):
    rows = benchmark.pedantic(_EXPERIMENT.run, rounds=1, iterations=1)
    report(Table3Experiment.render(rows))

    by_key = {(r.function, r.calls): r for r in rows}
    single = by_key[("getPerson", 1)]
    many = by_key[("getPerson", 1000)]
    # Bulk-as-join: exec grows far sublinearly in the number of calls.
    assert many.exec_ms < 200 * max(single.exec_ms, 0.05)
    # Compile cost is per-request, not per-call.
    assert many.compile_ms < single.compile_ms * 10 + 10.0
