"""Benchmark: the expat parse frontend vs the pure-python reference.

Cold ``parse_document`` of XMark documents — the bulk-ingest /
message-treebuild pass ROADMAP names the dominant message-path cost.
Both backends are timed on identical input; the expat backend must win
by >= 5x at the largest scale while producing a byte-identical encoding
(pre/size/level planes and gapped order keys are asserted per run).
The serializer's wire fast path is measured alongside on the same
document.

Run standalone (CI uploads the JSON):

    PYTHONPATH=src python -m pytest -q -rA \
        benchmarks/bench_parse_frontend.py \
        --benchmark-json=BENCH_parse_frontend.json
"""

import time

import pytest

from repro.workloads.xmark import XMarkConfig, generate_auctions
from repro.xdm.nodes import (
    DocumentNode,
    ElementNode,
    ProcessingInstructionNode,
    TextNode,
)
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize

SCALES = {
    "sf-small": XMarkConfig(persons=25, closed_auctions=120, open_auctions=12),
    "sf-medium": XMarkConfig(persons=50, closed_auctions=300, open_auctions=30),
    "sf-large": XMarkConfig(persons=100, closed_auctions=600, open_auctions=60),
}
LARGEST = "sf-large"
BASELINE_RUNS = 3


def encoding_plane(document):
    """The full structural encoding: (kind, serial, size, level) rows in
    document order, attributes included — byte-identical across backends
    means these (and names/values) match exactly."""
    rows = []
    stack = [document]
    while stack:
        node = stack.pop()
        rows.append((type(node).__name__, node.order_key[1], node.size,
                     node.level, getattr(node, "name", None),
                     getattr(node, "content", None)))
        if isinstance(node, ElementNode):
            for attribute in node.attributes:
                rows.append(("Attribute", attribute.order_key[1], 0,
                             attribute.level, attribute.name,
                             attribute.value))
            stack.extend(reversed(node.children))
        elif isinstance(node, DocumentNode):
            stack.extend(reversed(node.children))
    return rows


@pytest.mark.parametrize("scale", list(SCALES))
def test_cold_parse_speedup(benchmark, report, scale):
    text = generate_auctions(SCALES[scale])

    # Best-of-N pure-python baseline (the slow side).
    baseline_seconds = float("inf")
    python_doc = None
    for _ in range(BASELINE_RUNS):
        started = time.perf_counter()
        python_doc = parse_document(text, uri="auctions.xml",
                                    backend="python")
        baseline_seconds = min(baseline_seconds,
                               time.perf_counter() - started)

    expat_docs = []

    def parse_expat():
        document = parse_document(text, uri="auctions.xml",
                                  backend="expat")
        expat_docs.append(document)
        return document

    benchmark.pedantic(parse_expat, rounds=10, iterations=1)
    expat_seconds = benchmark.stats.stats.min

    # Byte-identical encodings: pre/size/level planes + order keys.
    assert encoding_plane(expat_docs[0]) == encoding_plane(python_doc)

    speedup = baseline_seconds / max(expat_seconds, 1e-9)
    mb = len(text.encode("utf-8")) / 1e6
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["document_mb"] = round(mb, 3)
    benchmark.extra_info["python_ms"] = round(baseline_seconds * 1000, 3)
    benchmark.extra_info["expat_ms"] = round(expat_seconds * 1000, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    report(f"parse frontend [{scale:9s}] {mb:6.3f} MB  "
           f"python {baseline_seconds * 1000:8.2f} ms -> "
           f"expat {expat_seconds * 1000:7.2f} ms  ({speedup:5.2f}x)")

    # Acceptance floor (ISSUE 7): >= 5x cold parse at the largest scale.
    if scale == LARGEST:
        assert speedup >= 5.0, speedup


def test_serializer_wire_fast_path(benchmark, report):
    """The mirror-image pass: wire serialization of the parsed tree."""
    text = generate_auctions(SCALES[LARGEST])
    document = parse_document(text, uri="auctions.xml")

    benchmark.pedantic(serialize, args=(document,), rounds=10, iterations=1)
    wire_seconds = benchmark.stats.stats.min

    # Round-trip sanity: reparsing the output reproduces the encoding.
    output = serialize(document)
    assert encoding_plane(parse_document(output)) \
        == encoding_plane(parse_document(text))

    benchmark.extra_info["wire_ms"] = round(wire_seconds * 1000, 3)
    report(f"serialize wire [{LARGEST:9s}] "
           f"{len(output.encode()) / 1e6:6.3f} MB  "
           f"{wire_seconds * 1000:7.2f} ms")
