"""Benchmark: loop-lifted path pushdown vs the interpreter fallback.

Queries mixing FLWOR iteration with path steps now compile through
:class:`~repro.pathfinder.LoopLiftingCompiler` to algebra plans whose
axis steps are staircase-pruned window scans over the
``StructuralIndex`` pre/size/level columns — one set-at-a-time scan per
step across *all* iterations.  The fallback is the tree interpreter,
which re-enters the path for every FLWOR binding; with the accelerator
ablated (``accelerator=False``) it pays the full per-node walking tax
these queries paid before the pushdown landed.

Run standalone (CI uploads the JSON):

    PYTHONPATH=src python -m pytest -q -rA \
        benchmarks/bench_pathfinder_pushdown.py \
        --benchmark-json=BENCH_pathfinder_pushdown.json
"""

import gc
import time

import pytest

from repro.pathfinder import LoopLiftedQuery
from repro.workloads.xmark import XMarkConfig, generate_auctions, generate_persons
from repro.xml import parse_document
from repro.xml.serializer import serialize_sequence
from repro.xquery.evaluator import evaluate_query

SCALES = {
    "sf-small": XMarkConfig(persons=25, closed_auctions=120, open_auctions=12),
    "sf-medium": XMarkConfig(persons=50, closed_auctions=300, open_auctions=30),
    "sf-large": XMarkConfig(persons=100, closed_auctions=600, open_auctions=60),
}
LARGEST = "sf-large"

# Path-heavy shapes over the XMark documents: a bulk scan, a FLWOR that
# re-enters a path per binding (the loop-lifting win: the lifted plan
# runs each step once, set-at-a-time, across all iterations), and a
# predicate selection.
QUERIES = {
    "descendant-scan": "doc('auctions.xml')//closed_auction/price",
    "flwor-paths": "for $ca in doc('auctions.xml')//closed_auction "
                   "return $ca/annotation/description/text",
    # A non-equality predicate: the engine's equality value index (the
    # Saxon-style hash-join probe) covers [x = v] in *both* modes, so an
    # inequality is what actually measures predicate pushdown.
    "predicate-select": "doc('auctions.xml')"
                        "//closed_auction[price > 400]/itemref/@item",
}

_documents = {}


def _resolver(scale: str):
    if scale not in _documents:
        config = SCALES[scale]
        _documents[scale] = {
            "persons.xml": parse_document(generate_persons(config),
                                          uri="persons.xml"),
            "auctions.xml": parse_document(generate_auctions(config),
                                           uri="auctions.xml"),
        }
    return _documents[scale].get


def _timed_lifted(query: str, resolver) -> tuple[float, list]:
    started = time.perf_counter()
    result = LoopLiftedQuery(query, doc_resolver=resolver).run()
    return time.perf_counter() - started, result


def _timed_interpreter(query: str, resolver,
                       accelerator: bool) -> tuple[float, list]:
    started = time.perf_counter()
    result = evaluate_query(query, doc_resolver=resolver,
                            accelerator=accelerator)
    return time.perf_counter() - started, result


@pytest.mark.parametrize("scale", list(SCALES))
@pytest.mark.parametrize("shape", list(QUERIES))
def test_pushdown_speedup(benchmark, report, scale, shape):
    query = QUERIES[shape]
    resolver = _resolver(scale)

    # Warm all paths (structural index, plan shapes); results must be
    # identical between the lifted plan and both interpreter modes.
    _, warm_lifted = _timed_lifted(query, resolver)
    _, warm_interp = _timed_interpreter(query, resolver, True)
    _, warm_naive = _timed_interpreter(query, resolver, False)
    assert serialize_sequence(warm_lifted) == serialize_sequence(warm_interp)
    assert serialize_sequence(warm_lifted) == serialize_sequence(warm_naive)

    # Best-of-5 on all sides (with a GC sweep first) keeps the asserted
    # ratio robust against one-off scheduler/GC stalls on shared CI
    # runners and against allocation pressure from earlier tests.
    gc.collect()
    fallback_seconds = min(_timed_interpreter(query, resolver, False)[0]
                           for _ in range(5))
    interp_seconds = min(_timed_interpreter(query, resolver, True)[0]
                         for _ in range(5))
    gc.collect()
    benchmark.pedantic(_timed_lifted, args=(query, resolver),
                       rounds=5, iterations=1)
    lifted_seconds = benchmark.stats.stats.min
    speedup = fallback_seconds / max(lifted_seconds, 1e-9)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["fallback_ms"] = round(fallback_seconds * 1000, 3)
    benchmark.extra_info["interp_accel_ms"] = round(interp_seconds * 1000, 3)
    benchmark.extra_info["lifted_ms"] = round(lifted_seconds * 1000, 3)
    benchmark.extra_info["speedup_vs_fallback"] = round(speedup, 1)
    report(f"path pushdown [{scale:9s}] {shape:16s} "
           f"fallback {fallback_seconds * 1000:9.2f} ms -> "
           f"lifted {lifted_seconds * 1000:7.2f} ms  ({speedup:8.1f}x)")

    # Acceptance floor: lifted path steps beat the interpreter fallback
    # at the largest scale factor.  Bulk scans win big (window scans vs
    # full walks); per-iteration FLWOR/predicate shapes win on constant
    # factors (batched set-at-a-time scans vs per-binding re-entry), so
    # their floors are deliberately conservative for noisy CI runners.
    if scale == LARGEST:
        floors = {"descendant-scan": 1.5, "flwor-paths": 1.02,
                  "predicate-select": 1.1}
        assert speedup >= floors[shape], (shape, speedup)


# -- per-axis microbench: the closed lifted core ---------------------------
#
# One query per newly lifted axis (plus the positional-predicate
# shapes), measured exactly like the pushdown shapes above: the lifted
# window kernel vs the naive per-node interpreter baseline those
# queries fell back to before the core closed.  ``following`` /
# ``preceding`` carry the hard >=2x acceptance floor at sf-large — the
# staircase boundary windows vs a whole-document walk per context node.
AXIS_QUERIES = {
    "ancestor": "doc('persons.xml')//city/ancestor::person/name",
    "ancestor-or-self": "doc('persons.xml')//city/ancestor-or-self::*",
    "following": "doc('auctions.xml')//seller/following::price",
    "preceding": "doc('auctions.xml')//price/preceding::seller",
    "following-sibling":
        "doc('auctions.xml')//seller/following-sibling::itemref",
    "preceding-sibling":
        "doc('auctions.xml')//itemref/preceding-sibling::seller",
    "positional-literal": "doc('auctions.xml')//closed_auction/*[2]",
    "positional-last": "doc('auctions.xml')//closed_auction/*[last()]",
}

AXIS_FLOORS = {
    "ancestor": 1.2,
    "ancestor-or-self": 1.2,
    "following": 2.0,
    "preceding": 2.0,
    "following-sibling": 1.2,
    "preceding-sibling": 1.2,
    "positional-literal": 1.02,
    "positional-last": 1.02,
}


@pytest.mark.parametrize("axis", list(AXIS_QUERIES))
def test_axis_kernel_speedup(benchmark, report, axis):
    scale = LARGEST
    query = AXIS_QUERIES[axis]
    resolver = _resolver(scale)

    _, warm_lifted = _timed_lifted(query, resolver)
    _, warm_interp = _timed_interpreter(query, resolver, True)
    _, warm_naive = _timed_interpreter(query, resolver, False)
    assert serialize_sequence(warm_lifted) == serialize_sequence(warm_interp)
    assert serialize_sequence(warm_lifted) == serialize_sequence(warm_naive)

    gc.collect()
    fallback_seconds = min(_timed_interpreter(query, resolver, False)[0]
                           for _ in range(5))
    interp_seconds = min(_timed_interpreter(query, resolver, True)[0]
                         for _ in range(5))
    gc.collect()
    benchmark.pedantic(_timed_lifted, args=(query, resolver),
                       rounds=5, iterations=1)
    lifted_seconds = benchmark.stats.stats.min
    speedup = fallback_seconds / max(lifted_seconds, 1e-9)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["axis"] = axis
    benchmark.extra_info["fallback_ms"] = round(fallback_seconds * 1000, 3)
    benchmark.extra_info["interp_accel_ms"] = round(interp_seconds * 1000, 3)
    benchmark.extra_info["lifted_ms"] = round(lifted_seconds * 1000, 3)
    benchmark.extra_info["speedup_vs_fallback"] = round(speedup, 1)
    report(f"axis kernel   [{scale:9s}] {axis:18s} "
           f"fallback {fallback_seconds * 1000:9.2f} ms -> "
           f"lifted {lifted_seconds * 1000:7.2f} ms  ({speedup:8.1f}x)")
    assert speedup >= AXIS_FLOORS[axis], (axis, speedup)


def test_read_suite_fully_lifted(report):
    """Coverage gate: every XMark read-suite query runs ``plan ==
    "lifted"`` with no recorded fallback — a bench-side tripwire so a
    kernel regression shows up in CI even before the speedup floors."""
    from repro.engine.base import Engine
    from repro.workloads.xmark import READ_SUITE
    from repro.xquery.context import ExecutionContext

    resolver = _resolver("sf-small")
    engine = Engine()
    for name, query in READ_SUITE.items():
        result, explain = engine.execute(
            query, ExecutionContext(doc_resolver=resolver))
        assert explain.plan == "lifted", (name, explain.fallback_reason)
        assert explain.fallback_reason is None
        assert result, f"read-suite query unexpectedly empty: {name}"
    assert engine.fallback_stats() == {}
    report(f"read suite: {len(READ_SUITE)}/{len(READ_SUITE)} queries lifted, "
           "0 fallbacks")
