"""Benchmark regenerating Table 4: Q7 under four distribution strategies.

The default (modeled) mode runs the strategies for real at the paper's
cardinalities (250 persons, 4875 closed auctions, 6 matches) and derives
deterministic times from the measured volumes; a reduced-scale measured
(wall-time) variant is benchmarked alongside as a reality check.
"""

import pytest

from repro.experiments.table4 import Table4Experiment
from repro.strategies import STRATEGY_NAMES
from repro.workloads.xmark import XMarkConfig

_PAPER_SCALE = XMarkConfig(persons=250, closed_auctions=4875, matches=6)
_SMALL_SCALE = XMarkConfig(persons=40, closed_auctions=800, matches=6)


@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
def test_table4_strategy_modeled(benchmark, strategy):
    experiment = Table4Experiment(xmark=_PAPER_SCALE, mode="modeled")
    row = benchmark.pedantic(
        experiment.measure, args=(strategy,), rounds=1, iterations=1)
    benchmark.extra_info.update({
        "strategy": strategy,
        "total_ms": round(row.total_ms, 1),
        "monetdb_ms": round(row.local_ms, 1),
        "saxon_ms": round(row.remote_ms, 1),
        "kb_shipped": round(row.bytes_shipped / 1024, 1),
        "messages": row.messages,
    })
    assert row.results == 6


def test_table4_full_modeled(benchmark, report):
    experiment = Table4Experiment(xmark=_PAPER_SCALE, mode="modeled")
    rows = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(Table4Experiment.render(rows))

    table = {row.strategy: row for row in rows}
    # The paper's ordering: semi-join < push-down < data shipping <
    # relocation; relocation relieves the MonetDB peer.
    assert table["distributed semi-join"].total_ms == \
        min(row.total_ms for row in rows)
    assert table["execution relocation"].total_ms == \
        max(row.total_ms for row in rows)
    assert table["predicate push-down"].total_ms < \
        table["data shipping"].total_ms
    assert table["execution relocation"].local_ms < \
        table["data shipping"].local_ms


def test_table4_measured_small_scale(benchmark, report):
    """Wall-clock reality check at reduced scale (host-dependent)."""
    experiment = Table4Experiment(xmark=_SMALL_SCALE, mode="measured")
    rows = benchmark.pedantic(
        experiment.run, kwargs={"repeats": 2}, rounds=1, iterations=1)
    report("Measured (wall) at reduced scale:\n"
           + Table4Experiment.render(rows))
    assert all(row.results == 6 for row in rows)
