"""Benchmark regenerating Table 2: bulk vs one-at-a-time RPC × cache.

Run with::

    pytest benchmarks/bench_table2.py --benchmark-only

Each benchmark executes one cell of Table 2 on the simulated network;
the simulated milliseconds (the paper-comparable number) land in
``extra_info["simulated_ms"]`` and the full grid prints at the end.
"""

import pytest

from repro.experiments.table2 import Table2Experiment

_EXPERIMENT = Table2Experiment(iterations=(1, 1000))

_CELLS = [
    ("one-at-a-time", False, 1),
    ("one-at-a-time", False, 1000),
    ("bulk", False, 1),
    ("bulk", False, 1000),
    ("one-at-a-time", True, 1),
    ("one-at-a-time", True, 1000),
    ("bulk", True, 1),
    ("bulk", True, 1000),
]


@pytest.mark.parametrize("mechanism,cache,iterations", _CELLS)
def test_table2_cell(benchmark, mechanism, cache, iterations):
    simulated_ms = benchmark.pedantic(
        _EXPERIMENT.measure,
        args=(mechanism, cache, iterations),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["simulated_ms"] = simulated_ms
    benchmark.extra_info["cell"] = f"{mechanism} cache={cache} $x={iterations}"

    # Shape guards (the paper's headline relations).
    if mechanism == "bulk" and iterations == 1000 and cache:
        assert simulated_ms < 50, "warm bulk RPC must stay in the few-ms range"
    if mechanism == "one-at-a-time" and iterations == 1000:
        assert simulated_ms > 1000, "per-call latency must accumulate"


def test_table2_grid(benchmark, report):
    """Regenerate and print the whole Table 2 grid."""
    rows = benchmark.pedantic(_EXPERIMENT.run, rounds=1, iterations=1)
    rendered = Table2Experiment.render(rows)
    report(rendered)
    benchmark.extra_info["table"] = [
        (r.mechanism, r.function_cache, r.iterations, round(r.milliseconds, 2))
        for r in rows
    ]
    by_key = {(r.mechanism, r.function_cache, r.iterations): r.milliseconds
              for r in rows}
    # Paper shape: bulk ~flat in $x; one-at-a-time ~linear in $x.
    assert by_key[("bulk", True, 1000)] < 20 * by_key[("bulk", True, 1)]
    assert by_key[("one-at-a-time", True, 1000)] > \
        500 * by_key[("one-at-a-time", True, 1)]
