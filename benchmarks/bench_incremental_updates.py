"""Benchmark: O(change) updates on the gapped pre-plane vs full restamp.

Each round applies a one-node PUL (insert / delete / rename) to an
XMark document and immediately runs a path probe — the
update-then-query cycle an update-capable peer serves under write
traffic.  The incremental path (gapped order keys, subtree re-encode,
in-place StructuralIndex patching) is measured against the ablation
baseline (dense ``stride=1`` keys, ``apply_updates(incremental=False)``:
full ``reencode_tree`` + stale-flag → full index rebuild on the next
probe).  Probe outputs must be byte-identical in both modes; the
incremental path must win by ≥ 10x on single-node updates at the
largest scale.

Run standalone (CI uploads the JSON):

    PYTHONPATH=src python -m pytest -q -rA \
        benchmarks/bench_incremental_updates.py \
        --benchmark-json=BENCH_incremental_updates.json
"""

import time

import pytest

from repro.workloads.xmark import XMarkConfig, generate_auctions
from repro.xdm.nodes import NodeFactory
from repro.xml import parse_document
from repro.xml.serializer import serialize_sequence
from repro.xquery.evaluator import CompiledQuery
from repro.xquf.pul import (
    DeleteNode,
    InsertInto,
    PendingUpdateList,
    RenameNode,
    apply_updates,
)

SCALES = {
    "sf-small": XMarkConfig(persons=25, closed_auctions=120, open_auctions=12),
    "sf-medium": XMarkConfig(persons=50, closed_auctions=300, open_auctions=30),
    "sf-large": XMarkConfig(persons=100, closed_auctions=600, open_auctions=60),
}
LARGEST = "sf-large"
MIXES = ("insert", "delete", "rename", "mixed")
ROUNDS = 24

#: Probe touching the tag partition and the descendant windows — the
#: query a stale index forces a full rebuild for.
PROBE = ("(count(doc('auctions.xml')//annotation), "
         "count(doc('auctions.xml')//note))")


def _one_node_pul(mix: str, round_index: int, targets: list,
                  factory: NodeFactory, inserted: list) -> PendingUpdateList:
    pul = PendingUpdateList()
    kind = mix if mix != "mixed" \
        else ("insert", "rename", "delete")[round_index % 3]
    if kind == "insert":
        note = factory.element("note")
        pul.add(InsertInto(targets[round_index % len(targets)], [note]))
        inserted.append(note)
    elif kind == "delete":
        if mix == "mixed" and inserted:
            pul.add(DeleteNode(inserted.pop()))
        else:
            pul.add(DeleteNode(targets[round_index % len(targets)]))
    else:
        price = targets[round_index % len(targets)].find("price")
        new_name = "cost" if price is not None and \
            price.local_name == "price" else "price"
        pul.add(RenameNode(price or targets[0], new_name))
    return pul


class _Workload:
    """One parsed+primed document plus its update/probe machinery, so
    the timed section covers exactly the update-then-probe loop (never
    the XMark parse)."""

    def __init__(self, scale: str, mix: str, incremental: bool) -> None:
        self.mix = mix
        self.incremental = incremental
        stride = None if incremental else 1
        self.document = parse_document(generate_auctions(SCALES[scale]),
                                       uri="auctions.xml", stride=stride)
        self.resolver = {"auctions.xml": self.document}.get
        self.probe = CompiledQuery(PROBE, None)
        self.run_probe()  # prime: structural index + tag partitions
        closed = self.document.root_element.find("closed_auctions")
        # Delete mixes consume targets: keep the pool >= the round count.
        self.targets = list(closed.child_elements())
        assert len(self.targets) >= 2 * ROUNDS
        self.factory = NodeFactory()
        self.inserted: list = []
        self.outputs: list = []

    def run_probe(self) -> str:
        result, _ = self.probe.execute(doc_resolver=self.resolver,
                                       accelerator=True)
        return serialize_sequence(result)

    def run_rounds(self) -> float:
        """The measured section: ROUNDS one-node PULs, each followed by
        the probe; returns elapsed seconds."""
        started = time.perf_counter()
        for round_index in range(ROUNDS):
            pul = _one_node_pul(self.mix, round_index, self.targets,
                                self.factory, self.inserted)
            apply_updates(pul, incremental=self.incremental)
            self.outputs.append(self.run_probe())
        return time.perf_counter() - started


def _run_mode(scale: str, mix: str, incremental: bool) -> tuple[float, list]:
    workload = _Workload(scale, mix, incremental)
    seconds = workload.run_rounds()
    return seconds, workload.outputs


@pytest.mark.parametrize("scale", list(SCALES))
@pytest.mark.parametrize("mix", MIXES)
def test_incremental_update_speedup(benchmark, report, scale, mix):
    # Best-of-2 full-restamp baseline (it is the slow side; two runs
    # keep total bench time in check while absorbing one-off stalls).
    baseline = [_run_mode(scale, mix, incremental=False) for _ in range(2)]
    baseline_seconds = min(seconds for seconds, _ in baseline)

    # pedantic's setup hook keeps the parse/prime outside the timing;
    # the recorded stats are the update-then-probe loop alone.
    incremental_runs: list[_Workload] = []

    def setup():
        workload = _Workload(scale, mix, incremental=True)
        incremental_runs.append(workload)
        return (workload,), {}

    benchmark.pedantic(_Workload.run_rounds, setup=setup,
                       rounds=3, iterations=1)
    incremental_seconds = benchmark.stats.stats.min
    incremental_outputs = incremental_runs[0].outputs

    # Byte-identical probe outputs after every round, both modes.
    assert incremental_outputs == baseline[0][1]

    per_update_ms = incremental_seconds * 1000 / ROUNDS
    speedup = baseline_seconds / max(incremental_seconds, 1e-9)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["mix"] = mix
    benchmark.extra_info["rounds"] = ROUNDS
    benchmark.extra_info["full_ms"] = round(baseline_seconds * 1000, 3)
    benchmark.extra_info["incremental_ms"] = \
        round(incremental_seconds * 1000, 3)
    benchmark.extra_info["per_update_ms"] = round(per_update_ms, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    report(f"incremental updates [{scale:9s}] {mix:7s} "
           f"full {baseline_seconds * 1000:9.2f} ms -> "
           f"incr {incremental_seconds * 1000:7.2f} ms  "
           f"({speedup:6.1f}x, {per_update_ms:.3f} ms/update)")

    # Acceptance floor (ISSUE 5): >= 10x on one-node update/probe
    # cycles at the largest scale (measured margins are far larger).
    if scale == LARGEST:
        assert speedup >= 10.0, (mix, speedup)
