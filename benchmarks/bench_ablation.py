"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation toggles one optimization and measures the same workload:

* **FLWOR hash join** (MonetDB's relational join) on the Q7 join —
  off reverts to nested-loop semantics;
* **Bulk RPC vs one-at-a-time** on the echo loop (the paper's own
  ablation, Table 2, here at the message-count level);
* **function cache** cold vs warm single-call latency.

Results must agree between variants — the ablations are performance-only.
"""


from repro.engine import MonetEngine, TreeEngine
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.workloads.xmark import XMarkConfig, generate_auctions, generate_persons
from repro.xdm import deep_equal

JOIN_QUERY = """
for $p in doc("persons.xml")//person,
    $ca in doc("auctions.xml")//closed_auction
where $p/@id = $ca/buyer/@person
return <result>{string($p/@id)}</result>
"""

_CONFIG = XMarkConfig(persons=60, closed_auctions=600, matches=6)


def _join_peer(optimize_joins: bool) -> XRPCPeer:
    engine = MonetEngine() if optimize_joins else TreeEngine()
    peer = XRPCPeer("solo", SimulatedNetwork(), engine=engine)
    peer.store.register("persons.xml", generate_persons(_CONFIG))
    peer.store.register("auctions.xml", generate_auctions(_CONFIG))
    return peer


class TestJoinAblation:
    def test_hash_join_on(self, benchmark):
        peer = _join_peer(optimize_joins=True)
        result = benchmark.pedantic(
            peer.execute_query, args=(JOIN_QUERY,), rounds=3, iterations=1)
        assert len(result.sequence) == _CONFIG.matches

    def test_hash_join_off(self, benchmark):
        peer = _join_peer(optimize_joins=False)
        result = benchmark.pedantic(
            peer.execute_query, args=(JOIN_QUERY,), rounds=3, iterations=1)
        assert len(result.sequence) == _CONFIG.matches

    def test_results_identical(self):
        on = _join_peer(True).execute_query(JOIN_QUERY)
        off = _join_peer(False).execute_query(JOIN_QUERY)
        assert deep_equal(on.sequence, off.sequence)


ECHO_MODULE = """
module namespace t = "test";
declare function t:echoVoid() { () };
"""

ECHO_QUERY = """
import module namespace t = "test" at "t.xq";
for $i in (1 to 200)
return execute at {"xrpc://served"} { t:echoVoid() }
"""


def _echo_site():
    network = SimulatedNetwork()
    origin = XRPCPeer("origin", network)
    served = XRPCPeer("served", network)
    for peer in (origin, served):
        peer.registry.register_source(ECHO_MODULE, location="t.xq")
    return network, origin


class TestBulkAblation:
    def test_bulk_on(self, benchmark):
        network, origin = _echo_site()
        result = benchmark.pedantic(
            origin.execute_query, args=(ECHO_QUERY,), rounds=3, iterations=1)
        benchmark.extra_info["messages"] = result.messages_sent
        assert result.messages_sent == 1

    def test_bulk_off(self, benchmark):
        network, origin = _echo_site()
        result = benchmark.pedantic(
            origin.execute_query, args=(ECHO_QUERY,),
            kwargs={"force_one_at_a_time": True}, rounds=3, iterations=1)
        benchmark.extra_info["messages"] = result.messages_sent
        assert result.messages_sent == 200


class TestFunctionCacheAblation:
    def _measure(self, warm: bool) -> float:
        from repro.experiments.table2 import Table2Experiment
        return Table2Experiment().measure("bulk", warm, 1)

    def test_cold_cache(self, benchmark):
        simulated_ms = benchmark.pedantic(
            self._measure, args=(False,), rounds=3, iterations=1)
        benchmark.extra_info["simulated_ms"] = simulated_ms
        assert simulated_ms > 100  # pays module translation

    def test_warm_cache(self, benchmark):
        simulated_ms = benchmark.pedantic(
            self._measure, args=(True,), rounds=3, iterations=1)
        benchmark.extra_info["simulated_ms"] = simulated_ms
        assert simulated_ms < 50
