"""Benchmark: what the fault-tolerance layer costs and what it buys.

Two acceptance gates for the resilience stack (:mod:`repro.net.retry`):

* **Happy-path overhead** — routing every exchange through the
  :class:`ResilientChannel` (breaker gate, deadline check, retry
  bookkeeping) must cost at most ~5% wall time over calling the
  transport directly when nothing fails — the policy layer may not tax
  the common case.
* **Tail latency under a dead peer** — with one blackholed destination
  in the fan-out, per-destination circuit breakers must collapse the
  tail: after the breaker opens, queries stop burning the blackhole
  timeout on every attempt and fail fast instead.  Measured in virtual
  time against the identical topology with breakers disabled.

Run standalone (CI uploads the JSON):

    PYTHONPATH=src python -m pytest -q -rA \
        benchmarks/bench_fault_tolerance.py \
        --benchmark-json=BENCH_fault_tolerance.json
"""

import time

from repro.net import SimulatedNetwork
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.retry import BreakerRegistry, ResilientChannel, RetryPolicy
from repro.rpc import XRPCPeer
from repro.rpc.client import ClientSession
from repro.xdm.atomic import integer

ECHO_MODULE = """
module namespace m = "urn:echo";
declare function m:double($x as xs:integer) as xs:integer { $x * 2 };
"""

PEERS = 3
CALLS_PER_MESSAGE = 16   # Bulk RPC: one message carries a loop's calls
ROUNDS = 40              # call_parallel rounds per measurement
REPEATS = 5              # take the min: least-noise estimate of the cost
OVERHEAD_BUDGET = 1.05


def _echo_fleet():
    network = SimulatedNetwork()
    for index in range(PEERS):
        peer = XRPCPeer(f"peer{index}", network)
        peer.registry.register_source(ECHO_MODULE, location="e.xq")
    return network


def _grouped_requests():
    return [
        (f"xrpc://peer{index}", "urn:echo", "e.xq", "double", 1,
         [[[integer(call)]] for call in range(CALLS_PER_MESSAGE)], False)
        for index in range(PEERS)
    ]


def _run_rounds(make_session) -> tuple[float, list]:
    best = float("inf")
    results = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        for _ in range(ROUNDS):
            results = make_session().call_parallel(_grouped_requests())
        best = min(best, time.perf_counter() - started)
    return best, results


def test_happy_path_overhead(benchmark, report):
    """Channel vs direct transport on an all-successful workload."""
    network = _echo_fleet()
    channel = ResilientChannel(network, policy=RetryPolicy(jitter=0.0))

    def direct_session():
        return ClientSession(network, origin="p0")

    def channel_session():
        return ClientSession(network, origin="p0", channel=channel)

    def measure():
        direct, direct_results = _run_rounds(direct_session)
        resilient, channel_results = _run_rounds(channel_session)
        return direct, resilient, direct_results, channel_results

    direct, resilient, direct_results, channel_results = \
        benchmark.pedantic(measure, rounds=1, iterations=1)
    assert channel_results == direct_results  # same answers either way

    overhead = resilient / direct
    report(
        f"Fault-tolerance happy path: {ROUNDS} parallel rounds x {PEERS} "
        f"peers — direct {direct * 1000:.1f} ms, through the resilient "
        f"channel {resilient * 1000:.1f} ms ({(overhead - 1) * 100:+.1f}%)")
    benchmark.extra_info.update({
        "peers": PEERS,
        "calls_per_message": CALLS_PER_MESSAGE,
        "rounds": ROUNDS,
        "direct_ms": round(direct * 1000, 2),
        "channel_ms": round(resilient * 1000, 2),
        "overhead_ratio": round(overhead, 4),
    })
    assert overhead <= OVERHEAD_BUDGET, (
        f"resilient channel costs {(overhead - 1) * 100:.1f}% over direct "
        f"dispatch on the happy path (budget {OVERHEAD_BUDGET})")


QUERIES = 20
BLACKHOLE_SECONDS = 0.5


def _tail_run(breakers: BreakerRegistry) -> list[float]:
    """Virtual seconds per keyword-search fan-out with one dead peer."""
    network = SimulatedNetwork()
    transport = FaultInjectingTransport(
        network, FaultPlan(blackhole=frozenset({"dead.example.org"}),
                           blackhole_seconds=BLACKHOLE_SECONDS))
    origin = XRPCPeer(
        "p0.example.org", transport,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.05,
                                 jitter=0.0),
        breakers=breakers)
    live = XRPCPeer("live.example.org", transport)
    live.store.register("d.xml", "<d><item>vintage clock</item></d>")
    latencies = []
    for _ in range(QUERIES):
        started = network.clock.now()
        result = origin.keyword_search(
            "vintage",
            peers=["xrpc://live.example.org", "xrpc://dead.example.org"],
            on_peer_failure="degrade")
        assert result.degraded and len(result.hits) == 1
        latencies.append(network.clock.now() - started)
    return latencies


def test_blackholed_peer_tail_latency(benchmark, report):
    def measure():
        with_breakers = _tail_run(
            BreakerRegistry(failure_threshold=3, cooldown=1000.0))
        without = _tail_run(BreakerRegistry(enabled=False))
        return with_breakers, without

    with_breakers, without = benchmark.pedantic(measure, rounds=1,
                                                iterations=1)
    p95_with = sorted(with_breakers)[int(0.95 * (QUERIES - 1))]
    p95_without = sorted(without)[int(0.95 * (QUERIES - 1))]
    total_with, total_without = sum(with_breakers), sum(without)

    report(
        f"Blackholed peer, {QUERIES} degraded searches: breakers "
        f"p95 {p95_with:.3f}s / total {total_with:.1f}s virtual, "
        f"no breakers p95 {p95_without:.3f}s / total {total_without:.1f}s")
    benchmark.extra_info.update({
        "queries": QUERIES,
        "blackhole_seconds": BLACKHOLE_SECONDS,
        "p95_with_breakers_s": round(p95_with, 3),
        "p95_without_breakers_s": round(p95_without, 3),
        "total_with_breakers_s": round(total_with, 3),
        "total_without_breakers_s": round(total_without, 3),
    })
    # Without breakers every query burns the full retry budget against
    # the dead peer; with breakers only the first does.
    assert p95_without >= BLACKHOLE_SECONDS * 3  # 3 attempts, full burn
    assert p95_with < p95_without / 10
    assert total_with < total_without / 5
