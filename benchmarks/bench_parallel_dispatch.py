"""Benchmark: parallel Bulk RPC dispatch over real HTTP (section 3.2).

The paper requires bulk requests to distinct peers to be dispatched in
parallel.  Here N loopback HTTP daemons each delay every request by a
fixed amount; ``ClientSession.call_parallel`` over the pooled
``HttpTransport`` must complete in roughly the *maximum* of the per-peer
latencies, not their sum — the win the keep-alive + thread fan-out
transport stack exists to deliver.
"""

import time

import pytest

from repro.net import HttpTransport, HttpXRPCServer
from repro.rpc import XRPCPeer
from repro.rpc.client import ClientSession
from repro.xdm.atomic import integer

ECHO_MODULE = """
module namespace m = "urn:echo";
declare function m:double($x as xs:integer) as xs:integer { $x * 2 };
"""

PEERS = 4
DELAY_SECONDS = 0.15


def _delayed(handler, delay):
    def handle(payload: str) -> str:
        time.sleep(delay)
        return handler(payload)
    return handle


@pytest.fixture
def fleet():
    """N HTTP peers, each answering after DELAY_SECONDS."""
    servers = []
    transport = HttpTransport()
    try:
        for index in range(PEERS):
            peer = XRPCPeer(f"peer{index}", HttpTransport())
            peer.registry.register_source(ECHO_MODULE, location="e.xq")
            server = HttpXRPCServer(
                _delayed(peer.server.handle, DELAY_SECONDS)).start()
            servers.append(server)
            transport.register_endpoint(f"peer{index}", server.address)
        yield transport
    finally:
        transport.close()
        for server in servers:
            server.stop()


def _grouped_requests():
    return [
        (f"xrpc://peer{index}", "urn:echo", "e.xq", "double", 1,
         [[[integer(index)]]], False)
        for index in range(PEERS)
    ]


def test_parallel_dispatch_takes_max_not_sum(benchmark, report, fleet):
    def dispatch():
        session = ClientSession(fleet, origin="p0")
        started = time.perf_counter()
        results = session.call_parallel(_grouped_requests())
        return time.perf_counter() - started, results

    elapsed, results = benchmark.pedantic(dispatch, rounds=1, iterations=1)
    assert [values for values in results] == \
        [[[integer(2 * index)]] for index in range(PEERS)]

    latency_sum = PEERS * DELAY_SECONDS
    report(
        f"Parallel dispatch to {PEERS} HTTP peers "
        f"({DELAY_SECONDS * 1000:.0f} ms latency each): "
        f"{elapsed * 1000:.0f} ms elapsed vs {latency_sum * 1000:.0f} ms "
        f"sequential sum")
    benchmark.extra_info.update({
        "peers": PEERS,
        "per_peer_delay_ms": DELAY_SECONDS * 1000,
        "elapsed_ms": round(elapsed * 1000, 1),
        "sequential_sum_ms": latency_sum * 1000,
    })
    # Concurrent fan-out: ~max of the branch latencies (plus overhead),
    # far below the sequential sum.
    assert elapsed < latency_sum * 0.6
    assert elapsed >= DELAY_SECONDS


def test_sequential_dispatch_is_sum_baseline(benchmark, report, fleet):
    """Contrast: one-at-a-time sends pay every peer's latency in full."""
    def dispatch():
        session = ClientSession(fleet, origin="p0")
        started = time.perf_counter()
        for destination, module, location, function, arity, calls, updating \
                in _grouped_requests():
            session.call(destination, module, location, function, arity,
                         calls, updating=updating)
        return time.perf_counter() - started

    elapsed = benchmark.pedantic(dispatch, rounds=1, iterations=1)
    report(f"Sequential baseline over the same fleet: "
           f"{elapsed * 1000:.0f} ms")
    benchmark.extra_info["elapsed_ms"] = round(elapsed * 1000, 1)
    assert elapsed >= PEERS * DELAY_SECONDS
