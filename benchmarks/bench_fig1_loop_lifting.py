"""Benchmark for Figures 1/2: the loop-lifted Bulk RPC translation.

This is a correctness artifact in the paper (worked tables, not
timings); the benchmark times the algebraic compilation + evaluation and
*asserts the exact intermediate tables of Figure 1* so regressions in
the translation rule are caught where the paper specifies them.
"""


from repro.pathfinder import LoopLiftedQuery
from repro.xdm.atomic import string
from repro.xquery.modules import ModuleRegistry

FILM_MODULE = """
module namespace f = "films";
declare function f:filmsByActor($actor as xs:string) as node()* { () };
"""

Q3 = """
import module namespace f="films" at "film.xq";
for $actor in ("Julie Andrews", "Sean Connery")
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} { f:filmsByActor($actor) }
"""

FILMS = {
    ("y.example.org", "Julie Andrews"): [],
    ("y.example.org", "Sean Connery"): ["The Rock", "Goldfinger"],
    ("z.example.org", "Julie Andrews"): ["Sound Of Music"],
    ("z.example.org", "Sean Connery"): [],
}


def _dispatch(peer, module, location, function, arity, calls, updating):
    from repro.net.transport import normalize_peer_uri
    key = normalize_peer_uri(peer)
    return [
        [string(name) for name in FILMS[(key, params[0][0].string_value())]]
        for params in calls
    ]


def _run_traced():
    registry = ModuleRegistry()
    registry.register_source(FILM_MODULE, location="film.xq")
    query = LoopLiftedQuery(Q3, registry=registry, dispatch=_dispatch,
                            trace=True)
    result = query.run()
    return result, query.trace


def test_figure1_translation(benchmark):
    result, trace = benchmark.pedantic(_run_traced, rounds=3, iterations=1)
    [entry] = trace
    y_entry, z_entry = entry["per_peer"]

    # The exact map tables of Figure 1.
    assert y_entry["map"].rows == [(1, 1), (3, 2)]
    assert z_entry["map"].rows == [(2, 1), (4, 2)]

    # msg/res tables and the merge-union result.
    final = entry["result"]
    assert [(r[0], r[1], r[2].string_value()) for r in final.rows] == [
        (2, 1, "Sound Of Music"),
        (3, 1, "The Rock"),
        (3, 2, "Goldfinger"),
    ]
    assert [item.string_value() for item in result] == [
        "Sound Of Music", "The Rock", "Goldfinger"]


def test_loop_lifting_scales(benchmark):
    """Bulk-translation cost for a 1000-iteration echo-style loop."""
    registry = ModuleRegistry()
    registry.register_source(FILM_MODULE, location="film.xq")
    query_text = """
    import module namespace f="films" at "film.xq";
    for $i in (1 to 1000)
    return execute at {"xrpc://y.example.org"} { f:filmsByActor("x") }
    """
    calls_seen = []

    def dispatch(peer, module, location, function, arity, calls, updating):
        calls_seen.append(len(calls))
        return [[] for _ in calls]

    def run():
        calls_seen.clear()
        query = LoopLiftedQuery(query_text, registry=registry,
                                dispatch=dispatch)
        return query.run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result == []
    assert calls_seen == [1000]  # one bulk request carrying all calls
