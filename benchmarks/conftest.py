"""Benchmark configuration.

Each benchmark regenerates one evaluation artifact of the paper.  The
pytest-benchmark timings measure this implementation's wall cost of
producing the artifact; the *paper-comparable* numbers (simulated or
modeled milliseconds) are attached as ``extra_info`` on each benchmark
and printed at the end of the run.
"""

import pytest


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Keep extra_info in the JSON output (default behaviour, explicit)."""


@pytest.fixture(scope="session")
def report(request):
    """Collector that prints paper-shaped tables after the session."""
    lines: list[str] = []

    def add(text: str) -> None:
        lines.append(text)

    yield add
    if lines:
        print("\n" + "\n".join(lines))
