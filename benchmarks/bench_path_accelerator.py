"""Benchmark: XPath-accelerator axis evaluation vs the naive walkers.

``Engine(accelerator=True)`` maps whole context sequences through an
axis as window scans over the per-tree pre array (staircase pruning,
tag-partitioned name tests); ``accelerator=False`` is the reference
implementation — per context node, recursive generators plus a
document-order sort.  Both must return identical results; the
accelerated path must win by a wide margin on the descendant- and
following-heavy shapes that dominate XMark path queries.

Run standalone (CI uploads the JSON):

    PYTHONPATH=src python -m pytest -q -rA \
        benchmarks/bench_path_accelerator.py \
        --benchmark-json=BENCH_path_accelerator.json
"""

import time

import pytest

from repro.workloads.xmark import XMarkConfig, generate_auctions
from repro.xml import parse_document
from repro.xml.serializer import serialize_sequence
from repro.xquery.evaluator import evaluate_query

SCALES = {
    "sf-small": XMarkConfig(persons=25, closed_auctions=120, open_auctions=12),
    "sf-medium": XMarkConfig(persons=50, closed_auctions=300, open_auctions=30),
    "sf-large": XMarkConfig(persons=100, closed_auctions=600, open_auctions=60),
}
LARGEST = "sf-large"

QUERIES = {
    "descendant": "count(doc('auctions.xml')//annotation)",
    "descendant-name": "doc('auctions.xml')//closed_auction"
                       "[buyer/@person = 'person0']/price",
    "following": "count(doc('auctions.xml')//buyer/following::itemref)",
    "preceding": "count(doc('auctions.xml')"
                 "//open_auction/preceding::closed_auction)",
}

_documents = {}


def _resolver(scale: str):
    if scale not in _documents:
        _documents[scale] = parse_document(
            generate_auctions(SCALES[scale]), uri="auctions.xml")
    document = _documents[scale]
    return {"auctions.xml": document}.get


def _timed(query: str, resolver, accelerator: bool) -> tuple[float, list]:
    started = time.perf_counter()
    result = evaluate_query(query, doc_resolver=resolver,
                            accelerator=accelerator)
    return time.perf_counter() - started, result


@pytest.mark.parametrize("scale", list(SCALES))
@pytest.mark.parametrize("shape", list(QUERIES))
def test_accelerator_speedup(benchmark, report, scale, shape):
    query = QUERIES[shape]
    resolver = _resolver(scale)

    # Warm both paths once (structural index build, plan shapes), then
    # measure; results must be identical in both modes.
    _, warm_accel = _timed(query, resolver, True)
    _, warm_naive = _timed(query, resolver, False)
    assert serialize_sequence(warm_accel) == serialize_sequence(warm_naive)

    # Best-of-3 on both sides keeps the asserted ratio robust against
    # one-off scheduler/GC stalls on shared CI runners.
    naive_seconds = min(_timed(query, resolver, False)[0] for _ in range(3))
    benchmark.pedantic(_timed, args=(query, resolver, True),
                       rounds=3, iterations=1)
    accel_seconds = benchmark.stats.stats.min
    speedup = naive_seconds / max(accel_seconds, 1e-9)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["naive_ms"] = round(naive_seconds * 1000, 3)
    benchmark.extra_info["accel_ms"] = round(accel_seconds * 1000, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    report(f"path accelerator [{scale:9s}] {shape:15s} "
           f"naive {naive_seconds * 1000:9.2f} ms -> "
           f"accel {accel_seconds * 1000:7.2f} ms  ({speedup:8.1f}x)")

    # Acceptance floor: >= 5x on descendant/following-heavy queries at
    # the largest scale factor (measured margins are far larger).
    if scale == LARGEST and shape in ("descendant", "following", "preceding"):
        assert speedup >= 5.0, (shape, speedup)
