"""Benchmark: prepare-time static analysis overhead.

The analyzer (:func:`repro.analysis.analyze_compiled`) runs once per
compiled query inside :meth:`Engine.execute` and is memoized on the
compiled object, so its budget is simple:

* a *cold* analysis (first run of a query) must stay a small fraction
  of what that first run costs anyway.  In this compile-is-evaluate
  pipeline the paper's "prepare" charge (module translation + plan
  generation, Table 2) lands on the first call — parse/bind at
  ``compile_with_stats`` plus plan generation during execution — so the
  gate asserts the XMark READ_SUITE's total analysis cost is at most 5%
  of its total first-run (compile + execute) cost;
* a *warm* analysis (every later execute on a plan-cache hit) is a memo
  lookup and must be at least 20x under the cold walk — the cache-hit
  path stays unchanged.

The raw analysis/parse ratio is also reported (not gated: both are
tens-of-microseconds quantities for these query sizes, so their ratio
is noise-dominated, but it makes regressions visible in the job log).

Run standalone (CI uploads the JSON):

    PYTHONPATH=src python -m pytest -q -rA benchmarks/bench_analysis.py \
        --benchmark-json=BENCH_analysis.json
"""

import time

from repro.analysis import analyze_compiled
from repro.workloads.xmark import (
    READ_SUITE,
    XMarkConfig,
    generate_auctions,
    generate_persons,
)
from repro.xml import parse_document
from repro.xquery.context import ExecutionContext
from repro.xquery.evaluator import CompiledQuery

CONFIG = XMarkConfig(persons=50, closed_auctions=300, open_auctions=30)

_documents = {
    "persons.xml": parse_document(generate_persons(CONFIG),
                                  uri="persons.xml"),
    "auctions.xml": parse_document(generate_auctions(CONFIG),
                                   uri="auctions.xml"),
}


def _resolver(uri):
    return _documents.get(uri)


def _compile_suite():
    return {name: CompiledQuery(source)
            for name, source in READ_SUITE.items()}


def _analyze_suite(compiled_suite):
    for compiled in compiled_suite.values():
        analyze_compiled(compiled, has_doc_resolver=True)


def test_analysis_cold(benchmark):
    """Fresh analysis of all 22 READ_SUITE queries (memo defeated by
    recompiling each round)."""

    def round_trip():
        suite = _compile_suite()
        _analyze_suite(suite)
        return suite

    benchmark(round_trip)


def test_analysis_warm_memo(benchmark):
    """The plan-cache-hit path: re-analysis of already-analyzed
    queries must be a dictionary lookup."""
    suite = _compile_suite()
    _analyze_suite(suite)

    benchmark(lambda: _analyze_suite(suite))


def test_analysis_overhead_budget(report):
    """Gate: cold analysis adds at most 5% to a query's first run, and
    the warm memoized path is at least 20x cheaper than cold."""
    from repro.engine import Engine

    rounds = 5
    first_run_total = 0.0
    cold_total = 0.0
    warm_total = 0.0
    compile_total = 0.0
    for _ in range(rounds):
        started = time.perf_counter()
        suite = _compile_suite()
        compile_seconds = time.perf_counter() - started
        compile_total += compile_seconds
        first_run_total += compile_seconds

        started = time.perf_counter()
        _analyze_suite(suite)
        cold_total += time.perf_counter() - started

        started = time.perf_counter()
        _analyze_suite(suite)
        warm_total += time.perf_counter() - started

        engine = Engine(plan_cache=False)
        context = ExecutionContext(doc_resolver=_resolver)
        started = time.perf_counter()
        for source in READ_SUITE.values():
            engine.execute(source, context)
        first_run_total += time.perf_counter() - started

    overhead = cold_total / first_run_total
    report(f"analysis overhead: {overhead * 100.0:.2f}% of first-run "
           f"(compile+execute) cost, "
           f"{cold_total / compile_total * 100.0:.1f}% of parse/bind alone, "
           f"warm/cold={warm_total / cold_total:.4f}")
    assert overhead <= 0.05, (
        f"static analysis costs {overhead * 100.0:.2f}% of the first-run "
        "cost (budget: 5%)")
    assert warm_total < cold_total / 20.0, (
        "memoized re-analysis should be a dictionary lookup, not a re-walk")
